#include "partition/hierarchy.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/subgraph.h"
#include "util/serialize.h"

namespace rne {

namespace {
constexpr uint32_t kHierarchyMagic = 0x524e4548;  // "RNEH"
}  // namespace

PartitionHierarchy PartitionHierarchy::Build(const Graph& g,
                                             const HierarchyOptions& options) {
  RNE_CHECK(options.fanout >= 2);
  RNE_CHECK(options.leaf_threshold >= 1);

  PartitionHierarchy h;
  h.leaf_of_.assign(g.NumVertices(), UINT32_MAX);

  Node root;
  root.parent = UINT32_MAX;
  root.level = 0;
  root.vertices.resize(g.NumVertices());
  std::iota(root.vertices.begin(), root.vertices.end(), 0);
  h.nodes_.push_back(std::move(root));

  // Breadth-first subdivision.
  std::queue<uint32_t> work;
  work.push(0);
  uint64_t seed_counter = options.partition.seed;
  while (!work.empty()) {
    const uint32_t id = work.front();
    work.pop();
    // Note: take a copy of the vertex list; nodes_ may reallocate below.
    const std::vector<VertexId> vertices = h.nodes_[id].vertices;
    const uint32_t level = h.nodes_[id].level;

    const bool depth_capped =
        options.max_levels != 0 && level + 1 >= options.max_levels;
    if (vertices.size() <= options.leaf_threshold || depth_capped) {
      continue;  // leaf
    }
    const size_t parts = std::min(options.fanout, vertices.size());
    auto [sub, to_parent] = InducedSubgraph(g, vertices);
    PartitionOptions popt = options.partition;
    popt.num_parts = parts;
    popt.seed = ++seed_counter;
    const PartitionResult pr = PartitionGraph(sub, popt);

    std::vector<std::vector<VertexId>> groups(parts);
    for (VertexId local = 0; local < sub.NumVertices(); ++local) {
      groups[pr.part_of[local]].push_back(to_parent[local]);
    }
    for (auto& group : groups) {
      if (group.empty()) continue;
      Node child;
      child.parent = id;
      child.level = level + 1;
      child.vertices = std::move(group);
      const auto child_id = static_cast<uint32_t>(h.nodes_.size());
      h.nodes_.push_back(std::move(child));
      h.nodes_[id].children.push_back(child_id);
      work.push(child_id);
    }
  }

  h.FinishConstruction();
  return h;
}

void PartitionHierarchy::FinishConstruction() {
  max_level_ = 0;
  for (const Node& n : nodes_) max_level_ = std::max(max_level_, n.level);
  levels_.assign(max_level_ + 1, {});
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    levels_[nodes_[id].level].push_back(id);
  }
  // Map vertices to leaves and record root-free ancestor paths.
  ancestors_.assign(leaf_of_.size(), {});
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    if (!nodes_[id].IsLeaf()) continue;
    for (const VertexId v : nodes_[id].vertices) {
      RNE_CHECK_MSG(leaf_of_[v] == UINT32_MAX,
                    "vertex assigned to two leaves");
      leaf_of_[v] = id;
    }
  }
  for (VertexId v = 0; v < leaf_of_.size(); ++v) {
    RNE_CHECK_MSG(leaf_of_[v] != UINT32_MAX, "vertex not covered by a leaf");
    std::vector<uint32_t> path;
    for (uint32_t id = leaf_of_[v]; id != UINT32_MAX && nodes_[id].level > 0;
         id = nodes_[id].parent) {
      path.push_back(id);
    }
    std::reverse(path.begin(), path.end());
    ancestors_[v] = std::move(path);
  }
}

std::vector<uint32_t> PartitionHierarchy::PartitionAtLevel(
    uint32_t level) const {
  std::vector<uint32_t> out;
  for (uint32_t l = 0; l <= std::min(level, max_level_); ++l) {
    for (const uint32_t id : levels_[l]) {
      if (nodes_[id].level == level || (nodes_[id].IsLeaf() && l < level)) {
        out.push_back(id);
      }
    }
  }
  return out;
}

void PartitionHierarchy::WriteTo(BinaryWriter& w) const {
  w.WritePod<uint64_t>(nodes_.size());
  w.WritePod<uint64_t>(leaf_of_.size());
  for (const Node& n : nodes_) {
    w.WritePod(n.parent);
    w.WritePod(n.level);
    w.WriteVector(n.children);
    w.WriteVector(n.vertices);
  }
}

bool PartitionHierarchy::ReadFrom(BinaryReader& r, PartitionHierarchy* out) {
  uint64_t num_nodes = 0, num_vertices = 0;
  if (!r.ReadPod(&num_nodes) || !r.ReadPod(&num_vertices)) return false;
  out->nodes_.resize(num_nodes);
  out->leaf_of_.assign(num_vertices, UINT32_MAX);
  for (Node& n : out->nodes_) {
    if (!r.ReadPod(&n.parent) || !r.ReadPod(&n.level) ||
        !r.ReadVector(&n.children) || !r.ReadVector(&n.vertices)) {
      return false;
    }
  }
  out->FinishConstruction();
  return true;
}

Status PartitionHierarchy::Save(const std::string& path) const {
  BinaryWriter w(path, kHierarchyMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  WriteTo(w);
  return w.Finish();
}

StatusOr<PartitionHierarchy> PartitionHierarchy::Load(const std::string& path) {
  BinaryReader r(path, kHierarchyMagic);
  if (!r.ok()) return r.status();
  PartitionHierarchy h;
  if (!ReadFrom(r, &h)) {
    return Status::Corruption("truncated hierarchy file " + path);
  }
  return h;
}

}  // namespace rne
