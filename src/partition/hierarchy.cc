#include "partition/hierarchy.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "graph/subgraph.h"
#include "obs/trace.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace rne {

PartitionHierarchy PartitionHierarchy::Build(const Graph& g,
                                             const HierarchyOptions& options) {
  RNE_CHECK(options.fanout >= 2);
  RNE_CHECK(options.leaf_threshold >= 1);
  RNE_SPAN("build.hierarchy");

  PartitionHierarchy h;
  h.leaf_of_.assign(g.NumVertices(), UINT32_MAX);

  Node root;
  root.parent = UINT32_MAX;
  root.level = 0;
  root.vertices.resize(g.NumVertices());
  std::iota(root.vertices.begin(), root.vertices.end(), 0);
  h.nodes_.push_back(std::move(root));

  // Level-synchronous subdivision: every node of a level partitions
  // concurrently against the frozen tree, then children are appended
  // serially in node-id order. Each node's partition is seeded from its id
  // (assigned breadth-first, so ids — and therefore the whole tree — do not
  // depend on the thread count). While a level has one splittable node
  // (e.g. the root), PartitionGraph parallelizes internally instead; the
  // inner thread count is 1 otherwise, so pools never nest.
  const size_t num_threads = ResolveNumThreads(options.partition.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  std::vector<uint32_t> frontier = {0};
  while (!frontier.empty()) {
    std::vector<uint32_t> splittable;
    for (const uint32_t id : frontier) {
      const Node& node = h.nodes_[id];
      const bool depth_capped =
          options.max_levels != 0 && node.level + 1 >= options.max_levels;
      if (node.vertices.size() <= options.leaf_threshold || depth_capped) {
        continue;  // leaf
      }
      splittable.push_back(id);
    }

    std::vector<std::vector<std::vector<VertexId>>> groups(splittable.size());
    auto split_node = [&](size_t i, size_t inner_threads) {
      const uint32_t id = splittable[i];
      const std::vector<VertexId>& vertices = h.nodes_[id].vertices;
      const size_t parts = std::min(options.fanout, vertices.size());
      auto [sub, to_parent] = InducedSubgraph(g, vertices);
      PartitionOptions popt = options.partition;
      popt.num_parts = parts;
      popt.seed = MixSeed(options.partition.seed, id);
      popt.num_threads = inner_threads;
      const PartitionResult pr = PartitionGraph(sub, popt);
      groups[i].resize(parts);
      for (VertexId local = 0; local < sub.NumVertices(); ++local) {
        groups[i][pr.part_of[local]].push_back(to_parent[local]);
      }
    };
    if (pool != nullptr && splittable.size() > 1) {
      pool->ParallelFor(splittable.size(),
                        [&](size_t i) { split_node(i, /*inner_threads=*/1); });
    } else {
      for (size_t i = 0; i < splittable.size(); ++i) {
        split_node(i, num_threads);
      }
    }

    std::vector<uint32_t> next;
    for (size_t i = 0; i < splittable.size(); ++i) {
      const uint32_t id = splittable[i];
      const uint32_t level = h.nodes_[id].level;
      for (auto& group : groups[i]) {
        if (group.empty()) continue;
        Node child;
        child.parent = id;
        child.level = level + 1;
        child.vertices = std::move(group);
        const auto child_id = static_cast<uint32_t>(h.nodes_.size());
        h.nodes_.push_back(std::move(child));
        h.nodes_[id].children.push_back(child_id);
        next.push_back(child_id);
      }
    }
    frontier = std::move(next);
  }

  RNE_CHECK_MSG(h.FinishConstruction(), "Build produced an invalid tree");
  return h;
}

bool PartitionHierarchy::FinishConstruction() {
  max_level_ = 0;
  for (const Node& n : nodes_) max_level_ = std::max(max_level_, n.level);
  levels_.assign(max_level_ + 1, {});
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    levels_[nodes_[id].level].push_back(id);
  }
  // Map vertices to leaves and record root-free ancestor paths. A vertex
  // assigned to two leaves, or to none, means the tree is invalid — this is
  // reachable from corrupt files, so report instead of aborting.
  ancestors_.assign(leaf_of_.size(), {});
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    if (!nodes_[id].IsLeaf()) continue;
    for (const VertexId v : nodes_[id].vertices) {
      if (leaf_of_[v] != UINT32_MAX) return false;
      leaf_of_[v] = id;
    }
  }
  for (VertexId v = 0; v < leaf_of_.size(); ++v) {
    if (leaf_of_[v] == UINT32_MAX) return false;
    std::vector<uint32_t> path;
    for (uint32_t id = leaf_of_[v]; id != UINT32_MAX && nodes_[id].level > 0;
         id = nodes_[id].parent) {
      path.push_back(id);
    }
    std::reverse(path.begin(), path.end());
    ancestors_[v] = std::move(path);
  }
  return true;
}

std::vector<uint32_t> PartitionHierarchy::PartitionAtLevel(
    uint32_t level) const {
  std::vector<uint32_t> out;
  for (uint32_t l = 0; l <= std::min(level, max_level_); ++l) {
    for (const uint32_t id : levels_[l]) {
      if (nodes_[id].level == level || (nodes_[id].IsLeaf() && l < level)) {
        out.push_back(id);
      }
    }
  }
  return out;
}

void PartitionHierarchy::WriteTo(BinaryWriter& w) const {
  w.WritePod<uint64_t>(nodes_.size());
  w.WritePod<uint64_t>(leaf_of_.size());
  for (const Node& n : nodes_) {
    w.WritePod(n.parent);
    w.WritePod(n.level);
    w.WriteVector(n.children);
    w.WriteVector(n.vertices);
  }
}

bool PartitionHierarchy::ReadFrom(BinaryReader& r, PartitionHierarchy* out) {
  uint64_t num_nodes = 0, num_vertices = 0;
  if (!r.ReadPod(&num_nodes) || !r.ReadPod(&num_vertices)) return false;
  // Each node occupies at least 24 payload bytes (parent, level, two length
  // prefixes) and each vertex at least 4 (its slot in a leaf's vertex list),
  // so corrupt counts fail here before any large resize.
  if (num_nodes == 0 || num_nodes > r.remaining() / 24 ||
      num_vertices > r.remaining() / sizeof(VertexId) ||
      num_nodes > UINT32_MAX || num_vertices > UINT32_MAX) {
    return false;
  }
  out->nodes_.resize(num_nodes);
  out->leaf_of_.assign(num_vertices, UINT32_MAX);
  for (uint32_t id = 0; id < num_nodes; ++id) {
    Node& n = out->nodes_[id];
    if (!r.ReadPod(&n.parent) || !r.ReadPod(&n.level) ||
        !r.ReadVector(&n.children) || !r.ReadVector(&n.vertices)) {
      return false;
    }
    // Structural validation keeps FinishConstruction (and everything built
    // on the tree) crash-free on corrupt input: every id must be in range,
    // parents must precede children (which rules out cycles), and levels
    // must increase by exactly one along every edge.
    if (id == 0) {
      if (n.parent != UINT32_MAX || n.level != 0) return false;
    } else if (n.parent >= id || n.level != out->nodes_[n.parent].level + 1) {
      return false;
    }
    for (const uint32_t c : n.children) {
      if (c <= id || c >= num_nodes) return false;
    }
    for (const VertexId v : n.vertices) {
      if (v >= num_vertices) return false;
    }
  }
  for (uint32_t id = 0; id < num_nodes; ++id) {
    for (const uint32_t c : out->nodes_[id].children) {
      if (out->nodes_[c].parent != id) return false;
    }
  }
  return out->FinishConstruction();
}

Status PartitionHierarchy::Save(const std::string& path) const {
  BinaryWriter w(path, kHierarchyMagic);
  if (!w.ok()) return Status::IoError("cannot open " + path + ".tmp");
  WriteTo(w);
  return w.Finish();
}

StatusOr<PartitionHierarchy> PartitionHierarchy::Load(const std::string& path) {
  BinaryReader r(path, kHierarchyMagic);
  if (!r.ok()) return r.status();
  PartitionHierarchy h;
  if (!ReadFrom(r, &h)) {
    return r.ReadError("corrupt hierarchy file " + path);
  }
  RNE_RETURN_IF_ERROR(r.Finish());
  return h;
}

}  // namespace rne
