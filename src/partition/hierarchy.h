// Recursive graph-partitioning hierarchy (Sec IV-A of the paper).
//
// The road network is partitioned into kappa sub-graphs, each sub-graph
// recursively partitioned again until it holds at most delta vertices,
// forming a tree: root = whole network, internal nodes = sub-graphs, leaves =
// small sub-graphs whose children are the real vertices. The hierarchical
// RNE model attaches a local embedding to every non-root tree node and every
// vertex; the tree also backs the range/kNN index of Sec VI.
#ifndef RNE_PARTITION_HIERARCHY_H_
#define RNE_PARTITION_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioner.h"
#include "util/serialize.h"
#include "util/status.h"

namespace rne {

struct HierarchyOptions {
  /// Partitioning fanout kappa (> 1).
  size_t fanout = 4;
  /// Vertex-count threshold delta: nodes with at most this many vertices are
  /// not subdivided further.
  size_t leaf_threshold = 64;
  /// Hard cap on subdivision depth (0 = unlimited).
  size_t max_levels = 0;
  /// Options forwarded to each PartitionGraph call (num_parts is overridden).
  PartitionOptions partition;
};

/// Immutable partition tree over a graph's vertex set.
class PartitionHierarchy {
 public:
  struct Node {
    uint32_t parent = UINT32_MAX;  // UINT32_MAX for the root
    uint32_t level = 0;            // root = 0, its children = 1, ...
    std::vector<uint32_t> children;
    /// Vertices of the underlying graph contained in this node's sub-graph.
    std::vector<VertexId> vertices;
    bool IsLeaf() const { return children.empty(); }
  };

  /// Builds the hierarchy by recursive kappa-way partitioning.
  static PartitionHierarchy Build(const Graph& g,
                                  const HierarchyOptions& options);

  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(uint32_t id) const {
    RNE_DCHECK(id < nodes_.size());
    return nodes_[id];
  }
  uint32_t root() const { return 0; }

  /// Number of vertices of the underlying graph.
  size_t num_vertices() const { return leaf_of_.size(); }

  /// Deepest node level (leaves may sit shallower on ragged trees).
  uint32_t max_level() const { return max_level_; }

  /// Id of the leaf node containing vertex v.
  uint32_t LeafOf(VertexId v) const {
    RNE_DCHECK(v < leaf_of_.size());
    return leaf_of_[v];
  }

  /// Node ids on the root-to-leaf path of v, excluding the root (the root's
  /// local embedding is shared by every vertex and cancels in differences).
  /// Ordered top-down: level 1 first.
  const std::vector<uint32_t>& AncestorsOf(VertexId v) const {
    RNE_DCHECK(v < ancestors_.size());
    return ancestors_[v];
  }

  /// All node ids with node.level == level.
  const std::vector<uint32_t>& NodesAtLevel(uint32_t level) const {
    RNE_DCHECK(level <= max_level_);
    return levels_[level];
  }

  /// Node ids forming a partition of the whole vertex set at depth `level`:
  /// the nodes at `level` plus any leaves that ended shallower. This is the
  /// paper's P_l for ragged trees.
  std::vector<uint32_t> PartitionAtLevel(uint32_t level) const;

  /// Persistence (used by the saved RNE model).
  Status Save(const std::string& path) const;
  static StatusOr<PartitionHierarchy> Load(const std::string& path);

  /// Streaming forms for embedding the hierarchy inside a larger file.
  void WriteTo(BinaryWriter& w) const;
  static bool ReadFrom(BinaryReader& r, PartitionHierarchy* out);

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<uint32_t>> levels_;  // level -> node ids
  std::vector<uint32_t> leaf_of_;              // vertex -> leaf node id
  std::vector<std::vector<uint32_t>> ancestors_;  // vertex -> path (no root)
  uint32_t max_level_ = 0;

  /// Derives levels_/leaf_of_/ancestors_ from nodes_. False if the tree is
  /// structurally invalid (possible when nodes_ came from a corrupt file).
  bool FinishConstruction();
};

}  // namespace rne

#endif  // RNE_PARTITION_HIERARCHY_H_
