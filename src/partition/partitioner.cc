#include "partition/partitioner.h"

#include <algorithm>
#include <array>
#include <memory>
#include <numeric>
#include <queue>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rne {

namespace {

/// Minimum work-graph size before intra-bisection ParallelFor is worth the
/// pool round trip.
constexpr size_t kIntraParallelCutoff = 1024;

/// Cell seed from the part-id interval [first_part, first_part + k):
/// intervals are unique across the recursion tree, so every cell draws from
/// an independent, reproducible stream.
uint64_t CellSeed(uint64_t seed, uint64_t first_part, uint64_t k) {
  return MixSeed(seed, first_part, k);
}

// Working graph for the multilevel pipeline: adjacency lists with aggregated
// edge weights and a vertex weight = number of original vertices represented.
struct WorkGraph {
  std::vector<std::vector<std::pair<uint32_t, double>>> adj;
  std::vector<uint32_t> vwgt;

  size_t n() const { return vwgt.size(); }
  uint64_t TotalVertexWeight() const {
    uint64_t s = 0;
    for (uint32_t w : vwgt) s += w;
    return s;
  }
};

WorkGraph FromGraph(const Graph& g) {
  WorkGraph wg;
  wg.adj.resize(g.NumVertices());
  wg.vwgt.assign(g.NumVertices(), 1);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    wg.adj[v].reserve(g.Degree(v));
    for (const Edge& e : g.Neighbors(v)) {
      wg.adj[v].emplace_back(e.to, e.weight);
    }
  }
  return wg;
}

// Heavy-edge matching; returns coarse graph + fine->coarse map.
struct Coarsening {
  WorkGraph coarse;
  std::vector<uint32_t> fine_to_coarse;
};

Coarsening Coarsen(const WorkGraph& g, Rng& rng, ThreadPool* intra_pool) {
  const size_t n = g.n();
  std::vector<uint32_t> match(n, UINT32_MAX);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  for (const uint32_t v : order) {
    if (match[v] != UINT32_MAX) continue;
    uint32_t best = UINT32_MAX;
    double best_w = -1.0;
    for (const auto& [u, w] : g.adj[v]) {
      if (match[u] == UINT32_MAX && u != v && w > best_w) {
        best = u;
        best_w = w;
      }
    }
    if (best != UINT32_MAX) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  Coarsening out;
  out.fine_to_coarse.assign(n, UINT32_MAX);
  uint32_t num_coarse = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (out.fine_to_coarse[v] != UINT32_MAX) continue;
    out.fine_to_coarse[v] = num_coarse;
    if (match[v] != v) out.fine_to_coarse[match[v]] = num_coarse;
    ++num_coarse;
  }

  out.coarse.adj.resize(num_coarse);
  out.coarse.vwgt.assign(num_coarse, 0);
  for (uint32_t v = 0; v < n; ++v) {
    out.coarse.vwgt[out.fine_to_coarse[v]] += g.vwgt[v];
  }
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t cv = out.fine_to_coarse[v];
    for (const auto& [u, w] : g.adj[v]) {
      const uint32_t cu = out.fine_to_coarse[u];
      if (cu == cv) continue;
      out.coarse.adj[cv].emplace_back(cu, w);
    }
  }
  // Sort + aggregate parallel edges per coarse vertex: the lists are
  // independent, so this (the expensive half of coarsening) parallelizes
  // with no synchronization and thread-count-invariant results.
  auto aggregate = [&](size_t cv) {
    auto& list = out.coarse.adj[cv];
    std::sort(list.begin(), list.end());
    size_t write = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      if (write > 0 && list[write - 1].first == list[i].first) {
        list[write - 1].second += list[i].second;
      } else {
        list[write++] = list[i];
      }
    }
    list.resize(write);
  };
  if (intra_pool != nullptr && num_coarse >= kIntraParallelCutoff) {
    intra_pool->ParallelFor(num_coarse, aggregate);
  } else {
    for (uint32_t cv = 0; cv < num_coarse; ++cv) aggregate(cv);
  }
  return out;
}

// Greedy graph-growing bisection: grow side 0 from a random seed by best
// cut gain until it holds ~target_weight vertex weight.
std::vector<uint8_t> InitialBisection(const WorkGraph& g,
                                      uint64_t target_weight, Rng& rng) {
  const size_t n = g.n();
  std::vector<uint8_t> side(n, 1);
  std::vector<char> in_region(n, 0);
  uint64_t grown = 0;

  // Priority queue of (gain, vertex) for frontier vertices.
  std::priority_queue<std::pair<double, uint32_t>> frontier;
  auto gain_of = [&](uint32_t v) {
    // Weight to region minus weight away: larger is better to absorb.
    double gain = 0.0;
    for (const auto& [u, w] : g.adj[v]) gain += in_region[u] ? w : -w;
    return gain;
  };

  std::vector<char> seen(n, 0);
  while (grown < target_weight) {
    if (frontier.empty()) {
      // Start (or restart, for disconnected graphs) from a random
      // not-yet-absorbed vertex.
      uint32_t start = UINT32_MAX;
      for (size_t attempts = 0; attempts < n; ++attempts) {
        const auto cand = static_cast<uint32_t>(rng.UniformIndex(n));
        if (!in_region[cand]) {
          start = cand;
          break;
        }
      }
      if (start == UINT32_MAX) {
        for (uint32_t v = 0; v < n; ++v) {
          if (!in_region[v]) {
            start = v;
            break;
          }
        }
      }
      if (start == UINT32_MAX) break;  // everything absorbed
      seen[start] = 1;
      frontier.emplace(0.0, start);
    }
    const auto [gain, v] = frontier.top();
    frontier.pop();
    if (in_region[v]) continue;
    in_region[v] = 1;
    side[v] = 0;
    grown += g.vwgt[v];
    for (const auto& [u, w] : g.adj[v]) {
      (void)w;
      if (!in_region[u]) {
        seen[u] = 1;
        frontier.emplace(gain_of(u), u);
      }
    }
  }
  return side;
}

// One Fiduccia-Mattheyses pass with rollback to the best prefix.
// side weights must respect [min_weight0, max_weight0] for side 0.
double FmPass(const WorkGraph& g, std::vector<uint8_t>& side,
              uint64_t min_weight0, uint64_t max_weight0,
              ThreadPool* intra_pool) {
  const size_t n = g.n();
  uint64_t weight0 = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (side[v] == 0) weight0 += g.vwgt[v];
  }
  auto gain_of = [&](uint32_t v) {
    double gain = 0.0;  // cut reduction if v switches sides
    for (const auto& [u, w] : g.adj[v]) gain += (side[u] != side[v]) ? w : -w;
    return gain;
  };

  // Max-heap keyed by gain; entries go stale when a neighbor moves. The
  // initial gain sweep reads the frozen `side` only, so it parallelizes;
  // the heap itself is built serially for a deterministic layout.
  std::priority_queue<std::pair<double, uint32_t>> heap;
  std::vector<char> locked(n, 0);
  std::vector<double> cached_gain(n, 0.0);
  if (intra_pool != nullptr && n >= kIntraParallelCutoff) {
    intra_pool->ParallelFor(n, [&](size_t v) {
      cached_gain[v] = gain_of(static_cast<uint32_t>(v));
    });
  } else {
    for (uint32_t v = 0; v < n; ++v) cached_gain[v] = gain_of(v);
  }
  for (uint32_t v = 0; v < n; ++v) heap.emplace(cached_gain[v], v);

  struct Move {
    uint32_t v;
    double gain;
  };
  std::vector<Move> moves;
  double cum = 0.0, best_cum = 0.0;
  size_t best_prefix = 0;

  while (!heap.empty() && moves.size() < n) {
    const auto [gain, v] = heap.top();
    heap.pop();
    if (locked[v] || gain != cached_gain[v]) continue;  // stale
    // Balance check for the hypothetical move.
    const uint64_t new_weight0 =
        side[v] == 0 ? weight0 - g.vwgt[v] : weight0 + g.vwgt[v];
    if (new_weight0 < min_weight0 || new_weight0 > max_weight0) continue;

    locked[v] = 1;
    side[v] ^= 1;
    weight0 = new_weight0;
    cum += gain;
    moves.push_back({v, gain});
    if (cum > best_cum + 1e-12) {
      best_cum = cum;
      best_prefix = moves.size();
    }
    for (const auto& [u, w] : g.adj[v]) {
      (void)w;
      if (!locked[u]) {
        cached_gain[u] = gain_of(u);
        heap.emplace(cached_gain[u], u);
      }
    }
  }
  // Roll back moves after the best prefix.
  for (size_t i = moves.size(); i > best_prefix; --i) {
    side[moves[i - 1].v] ^= 1;
  }
  return best_cum;
}

// Multilevel bisection; returns side (0/1) per vertex of g. Side 0 targets
// `target_weight` total vertex weight within (1 +/- eps).
std::vector<uint8_t> Bisect(const WorkGraph& g, uint64_t target_weight,
                            double eps, size_t coarsen_threshold,
                            size_t refine_passes, Rng& rng,
                            ThreadPool* intra_pool) {
  const uint64_t total = g.TotalVertexWeight();
  target_weight = std::min<uint64_t>(std::max<uint64_t>(target_weight, 1),
                                     total > 1 ? total - 1 : 1);
  const auto slack = static_cast<uint64_t>(eps * static_cast<double>(total));
  const uint64_t min0 = target_weight > slack ? target_weight - slack : 1;
  const uint64_t max0 = std::min<uint64_t>(total - 1, target_weight + slack);

  std::vector<uint8_t> side;
  if (g.n() <= coarsen_threshold) {
    side = InitialBisection(g, target_weight, rng);
  } else {
    Coarsening c = Coarsen(g, rng, intra_pool);
    if (c.coarse.n() >= g.n()) {
      // Matching failed to shrink (e.g. isolated vertices): bisect directly.
      side = InitialBisection(g, target_weight, rng);
    } else {
      const std::vector<uint8_t> coarse_side =
          Bisect(c.coarse, target_weight, eps, coarsen_threshold,
                 refine_passes, rng, intra_pool);
      side.resize(g.n());
      for (uint32_t v = 0; v < g.n(); ++v) {
        side[v] = coarse_side[c.fine_to_coarse[v]];
      }
    }
  }
  for (size_t pass = 0; pass < refine_passes; ++pass) {
    if (FmPass(g, side, min0, max0, intra_pool) <= 0.0) break;
  }
  return side;
}

// One cell of the level-synchronous recursive-bisection worklist: partition
// the vertex subset `ids` of the root work graph into parts
// [first_part, first_part + k).
struct Cell {
  std::vector<uint32_t> ids;
  size_t k = 1;
  uint32_t first_part = 0;
};

// Bisects one cell into its two child cells (returned halves are empty for
// terminal cells, whose vertices are assigned to part_of directly — cells
// cover disjoint vertex sets, so concurrent cells never write the same
// entry). Each cell seeds its own Rng, making the result independent of
// which thread runs it and of how many cells share the level.
std::array<Cell, 2> BisectCell(const WorkGraph& wg, const Cell& cell,
                               const PartitionOptions& options,
                               ThreadPool* intra_pool,
                               std::vector<uint32_t>* part_of) {
  const std::vector<uint32_t>& ids = cell.ids;
  const size_t k = cell.k;
  if (k == 1 || ids.size() <= 1) {
    for (const uint32_t v : ids) (*part_of)[v] = cell.first_part;
    return {};
  }
  Rng rng(CellSeed(options.seed, cell.first_part, k));
  // Build the induced subgraph of `ids`.
  std::vector<uint32_t> local_id(wg.n(), UINT32_MAX);
  for (uint32_t i = 0; i < ids.size(); ++i) local_id[ids[i]] = i;
  WorkGraph sub;
  sub.adj.resize(ids.size());
  sub.vwgt.resize(ids.size());
  for (uint32_t i = 0; i < ids.size(); ++i) {
    sub.vwgt[i] = wg.vwgt[ids[i]];
    for (const auto& [u, w] : wg.adj[ids[i]]) {
      if (local_id[u] != UINT32_MAX) sub.adj[i].emplace_back(local_id[u], w);
    }
  }

  const size_t k_left = k / 2;
  const size_t k_right = k - k_left;
  const uint64_t total = sub.TotalVertexWeight();
  const auto target = static_cast<uint64_t>(
      static_cast<double>(total) * static_cast<double>(k_left) /
      static_cast<double>(k));
  std::vector<uint8_t> side =
      Bisect(sub, target, options.balance_eps / 2.0, options.coarsen_threshold,
             options.refine_passes, rng, intra_pool);

  // Guarantee each side can host its parts: move vertices if degenerate.
  size_t count0 = 0;
  for (const uint8_t s : side) count0 += (s == 0);
  size_t count1 = side.size() - count0;
  for (uint32_t i = 0; count0 < k_left && i < side.size(); ++i) {
    if (side[i] == 1 && count1 > k_right) {
      side[i] = 0;
      ++count0;
      --count1;
    }
  }
  for (uint32_t i = 0; count1 < k_right && i < side.size(); ++i) {
    if (side[i] == 0 && count0 > k_left) {
      side[i] = 1;
      --count0;
      ++count1;
    }
  }

  std::array<Cell, 2> halves;
  halves[0].k = k_left;
  halves[0].first_part = cell.first_part;
  halves[0].ids.reserve(count0);
  halves[1].k = k_right;
  halves[1].first_part = cell.first_part + static_cast<uint32_t>(k_left);
  halves[1].ids.reserve(count1);
  for (uint32_t i = 0; i < ids.size(); ++i) {
    halves[side[i] == 0 ? 0 : 1].ids.push_back(ids[i]);
  }
  return halves;
}

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t x = seed ^ (a * 0x9E3779B97F4A7C15ull) ^
               (b * 0xBF58476D1CE4E5B9ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

void ComputeCutStats(const Graph& g, PartitionResult* result) {
  result->cut_weight = 0.0;
  result->cut_edges = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Edge& e : g.Neighbors(v)) {
      if (v < e.to && result->part_of[v] != result->part_of[e.to]) {
        result->cut_weight += e.weight;
        result->cut_edges += 1;
      }
    }
  }
}

PartitionResult PartitionGraph(const Graph& g,
                               const PartitionOptions& options) {
  RNE_CHECK(options.num_parts >= 1);
  PartitionResult result;
  result.num_parts = options.num_parts;
  result.part_of.assign(g.NumVertices(), 0);
  if (g.NumVertices() == 0) return result;
  RNE_CHECK_MSG(g.NumVertices() >= options.num_parts,
                "more parts than vertices");

  RNE_SPAN("build.partition.kway");
  const WorkGraph wg = FromGraph(g);
  std::vector<uint32_t> all(g.NumVertices());
  std::iota(all.begin(), all.end(), 0);

  const size_t num_threads = ResolveNumThreads(options.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1 && g.NumVertices() >= 2) {
    pool = std::make_unique<ThreadPool>(num_threads);
  }

  // Level-synchronous worklist over the bisection tree. A level with a
  // single cell (always the root split, the dominant cost) keeps the pool
  // for intra-bisection parallelism; multi-cell levels fan the cells out
  // across the pool instead. ThreadPool has no work stealing, so nesting
  // the two would deadlock — and serially both paths compute identical
  // results, which is what makes the partition thread-count-invariant.
  std::vector<Cell> cells;
  cells.push_back({std::move(all), options.num_parts, 0});
  while (!cells.empty()) {
    std::vector<std::array<Cell, 2>> halves(cells.size());
    if (pool != nullptr && cells.size() > 1) {
      pool->ParallelFor(cells.size(), [&](size_t i) {
        halves[i] = BisectCell(wg, cells[i], options, /*intra_pool=*/nullptr,
                               &result.part_of);
      });
    } else {
      for (size_t i = 0; i < cells.size(); ++i) {
        halves[i] =
            BisectCell(wg, cells[i], options, pool.get(), &result.part_of);
      }
    }
    std::vector<Cell> next;
    for (auto& pair : halves) {
      for (auto& child : pair) {
        if (!child.ids.empty()) next.push_back(std::move(child));
      }
    }
    cells = std::move(next);
  }
  ComputeCutStats(g, &result);
  return result;
}

}  // namespace rne
