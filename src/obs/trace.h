// Lightweight trace spans: RAII guards record named intervals (with
// thread-local nesting depth and a small dense thread id) into a bounded
// process-global ring buffer, exportable as plain JSON or as chrome://tracing
// "traceEvents" that load directly into chrome://tracing / Perfetto.
//
// Costs when enabled: two steady_clock reads plus one short mutex-guarded
// ring append per span — cheap enough for per-phase / per-level / per-round
// granularity. Spans are NOT meant for per-query granularity on the serve
// hot path; that is what LatencyStat histograms are for. When the ring is
// full the oldest events are overwritten (dropped_events() counts losses
// beyond capacity). Compiled out entirely under RNE_OBS_DISABLED, and
// inactive when obs::Enabled() is false at span construction.
#ifndef RNE_OBS_TRACE_H_
#define RNE_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rne::obs {

/// One completed span. Fixed-size name so the ring never allocates while
/// recording.
struct SpanEvent {
  static constexpr size_t kMaxName = 47;
  char name[kMaxName + 1];
  int64_t start_ns = 0;  // since process trace epoch (first obs use)
  int64_t dur_ns = 0;
  uint32_t tid = 0;   // dense per-thread id, 0-based
  uint16_t depth = 0;  // nesting depth at entry (0 = top-level)
};

/// RAII span: records [construction, destruction) into the global ring.
/// Use via RNE_SPAN rather than directly so spans vanish under
/// RNE_OBS_DISABLED.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  /// Records under the name "<name>.<index>" (per-level / per-round spans).
  SpanGuard(const char* name, size_t index);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void Begin(const char* name, size_t index, bool indexed);

  char name_[SpanEvent::kMaxName + 1];
  int64_t start_ns_ = 0;
  uint16_t depth_ = 0;
  bool active_ = false;
};

/// Nanoseconds since the process trace epoch (monotonic).
int64_t TraceNowNanos();

/// Copies the ring's events (oldest first) into `out`; returns the number of
/// events ever dropped due to ring overflow.
uint64_t TraceSnapshot(std::vector<SpanEvent>* out);

/// {"dropped":N,"spans":[{"name":..,"start_ns":..,"dur_ns":..,
///                        "tid":..,"depth":..},...]}
std::string TraceJson();

/// chrome://tracing JSON object format: {"traceEvents":[{"name":..,
/// "ph":"X","ts":<us>,"dur":<us>,"pid":1,"tid":..},...]} — open via
/// chrome://tracing "Load" or https://ui.perfetto.dev.
std::string TraceChromeJson();

/// Clears the ring and the dropped count (capacity and the trace epoch are
/// unchanged). Tests and tools that export per-run traces.
void ResetTrace();

/// Maximum events held by the ring (default 16384).
size_t TraceRingCapacity();
void SetTraceRingCapacity(size_t capacity);

}  // namespace rne::obs

#if defined(RNE_OBS_DISABLED)

#define RNE_SPAN(...) \
  do {                \
  } while (0)

#else  // !RNE_OBS_DISABLED

#define RNE_OBS_CONCAT_INNER(a, b) a##b
#define RNE_OBS_CONCAT(a, b) RNE_OBS_CONCAT_INNER(a, b)
/// Opens a span for the rest of the enclosing scope. One or two arguments:
///   RNE_SPAN("train.phase2");           -> "train.phase2"
///   RNE_SPAN("train.phase1.level", l);  -> "train.phase1.level.3"
#define RNE_SPAN(...) \
  ::rne::obs::SpanGuard RNE_OBS_CONCAT(rne_span_at_, __LINE__)(__VA_ARGS__)

#endif  // RNE_OBS_DISABLED

#endif  // RNE_OBS_TRACE_H_
