// Process-global, lock-cheap metrics registry: named counters, gauges, and
// log-bucketed latency histograms shared by the training and serving paths.
//
// Design:
//   - Counter  : relaxed std::atomic<uint64_t>. Add() is one atomic RMW.
//   - Gauge    : relaxed std::atomic<double> (last-writer-wins Set()).
//   - LatencyStat : LatencyHistogram is documented not thread-safe, so the
//     stat stripes records across 8 mutex-guarded shards picked by thread id
//     and merges them on Snapshot(). Contention on the hot path is near zero
//     because concurrent recorders land on different shards.
//   - MetricsRegistry::Global() hands out pointers that stay valid for the
//     process lifetime: entries are never removed, only their values are
//     cleared by ResetForTest(). This is what makes the static-local handle
//     caching in the RNE_* macros safe.
//
// Instrumentation macros (RNE_COUNTER_ADD / RNE_GAUGE_SET / RNE_HIST_RECORD)
// resolve the registry entry once per call site (magic static), check the
// runtime obs::Enabled() toggle, and compile to nothing when the project is
// built with -DRNE_OBS_DISABLED. The registry types themselves always exist
// (QueryEngine uses obs::Counter for its functional per-engine counters even
// in disabled builds); only the named-registry side channels vanish.
#ifndef RNE_OBS_METRICS_H_
#define RNE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/annotations.h"
#include "util/histogram.h"

namespace rne::obs {

/// Runtime kill switch consulted by every instrumentation macro. Defaults to
/// enabled; bench_micro's A/B leg flips it to measure instrumentation
/// overhead inside one binary.
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonically increasing event count. Relaxed atomics: totals are exact,
/// cross-counter ordering is not guaranteed (fine for metrics).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (samples/sec, max bucket error, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe latency distribution built from sharded LatencyHistograms.
/// Record() locks only the recording thread's shard; Snapshot() merges all
/// shards into one histogram for percentile queries.
class LatencyStat {
 public:
  void Record(int64_t nanos);
  /// Folds a locally accumulated histogram in (one shard lock total —
  /// cheaper than per-sample Record for batch recorders).
  void Merge(const LatencyHistogram& local);
  LatencyHistogram Snapshot() const;
  void Reset();

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    mutable Mutex mu;
    LatencyHistogram hist RNE_GUARDED_BY(mu);
  };
  Shard shards_[kShards];
};

/// Process-global name -> metric map. Get*() creates on first use and
/// returns a pointer that remains valid (and keeps its identity) for the
/// process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyStat* GetLatency(const std::string& name);

  /// Single JSON object:
  ///   {"counters":{name:value,...},
  ///    "gauges":{name:value,...},
  ///    "histograms":{name:{"count":..,"mean_ns":..,"p50_ns":..,
  ///                        "p95_ns":..,"p99_ns":..,"max_ns":..},...}}
  /// Zero-count metrics are included so consumers see a stable schema.
  std::string ToJson() const;

  /// Clears every value but keeps all entries (handed-out pointers stay
  /// valid). Tests only — production code never resets.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      RNE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ RNE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyStat>> latencies_
      RNE_GUARDED_BY(mu_);
};

/// Appends `v` to `out` in a JSON-safe format (finite -> shortest-ish
/// decimal, non-finite -> 0). Shared by the registry and trace exporters.
void AppendJsonDouble(std::string* out, double v);
/// Appends `s` as a quoted, escaped JSON string.
void AppendJsonString(std::string* out, const std::string& s);

}  // namespace rne::obs

#if defined(RNE_OBS_DISABLED)

#define RNE_COUNTER_ADD(name, n) \
  do {                           \
  } while (0)
#define RNE_GAUGE_SET(name, v) \
  do {                         \
  } while (0)
#define RNE_HIST_RECORD(name, nanos) \
  do {                               \
  } while (0)
#define RNE_HIST_RECORD_MERGE(name, local_hist) \
  do {                                          \
  } while (0)

#else  // !RNE_OBS_DISABLED

/// Adds `n` to the process-global counter `name` (string literal). The
/// registry lookup happens once per call site.
#define RNE_COUNTER_ADD(name, n)                                           \
  do {                                                                     \
    if (::rne::obs::Enabled()) {                                           \
      static ::rne::obs::Counter* const rne_obs_counter_handle =           \
          ::rne::obs::MetricsRegistry::Global().GetCounter(name);          \
      rne_obs_counter_handle->Add(static_cast<uint64_t>(n));               \
    }                                                                      \
  } while (0)

#define RNE_GAUGE_SET(name, v)                                             \
  do {                                                                     \
    if (::rne::obs::Enabled()) {                                           \
      static ::rne::obs::Gauge* const rne_obs_gauge_handle =               \
          ::rne::obs::MetricsRegistry::Global().GetGauge(name);            \
      rne_obs_gauge_handle->Set(static_cast<double>(v));                   \
    }                                                                      \
  } while (0)

#define RNE_HIST_RECORD(name, nanos)                                       \
  do {                                                                     \
    if (::rne::obs::Enabled()) {                                           \
      static ::rne::obs::LatencyStat* const rne_obs_hist_handle =          \
          ::rne::obs::MetricsRegistry::Global().GetLatency(name);          \
      rne_obs_hist_handle->Record(static_cast<int64_t>(nanos));            \
    }                                                                      \
  } while (0)

/// Folds a locally accumulated LatencyHistogram into the named registry
/// histogram (one lock total; preferred over per-sample RNE_HIST_RECORD in
/// batch loops).
#define RNE_HIST_RECORD_MERGE(name, local_hist)                            \
  do {                                                                     \
    if (::rne::obs::Enabled()) {                                           \
      static ::rne::obs::LatencyStat* const rne_obs_hist_merge_handle =    \
          ::rne::obs::MetricsRegistry::Global().GetLatency(name);          \
      rne_obs_hist_merge_handle->Merge(local_hist);                        \
    }                                                                      \
  } while (0)

#endif  // RNE_OBS_DISABLED

#endif  // RNE_OBS_METRICS_H_
