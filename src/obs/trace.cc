#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/annotations.h"
#include "util/timer.h"

namespace rne::obs {
namespace {

/// Bounded ring of completed spans. A single mutex is fine: spans close at
/// phase/level/round granularity, orders of magnitude below lock-contention
/// rates.
class TraceRing {
 public:
  static TraceRing& Global() {
    static TraceRing* const ring = new TraceRing();
    return *ring;
  }

  void Append(const SpanEvent& ev) {
    MutexLock lock(&mu_);
    if (events_.size() < capacity_) {
      events_.push_back(ev);
    } else {
      events_[next_overwrite_] = ev;
      next_overwrite_ = (next_overwrite_ + 1) % capacity_;
      ++dropped_;
    }
  }

  uint64_t Snapshot(std::vector<SpanEvent>* out) const {
    MutexLock lock(&mu_);
    out->clear();
    out->reserve(events_.size());
    // Oldest-first: the slot about to be overwritten is the oldest event.
    for (size_t i = 0; i < events_.size(); ++i) {
      out->push_back(events_[(next_overwrite_ + i) % events_.size()]);
    }
    return dropped_;
  }

  void Reset() {
    MutexLock lock(&mu_);
    events_.clear();
    next_overwrite_ = 0;
    dropped_ = 0;
  }

  size_t capacity() const {
    MutexLock lock(&mu_);
    return capacity_;
  }

  void set_capacity(size_t capacity) {
    MutexLock lock(&mu_);
    capacity_ = capacity == 0 ? 1 : capacity;
    if (events_.size() > capacity_) {
      // Keep the newest `capacity_` events, oldest-first at index 0.
      std::vector<SpanEvent> kept;
      kept.reserve(capacity_);
      const size_t n = events_.size();
      for (size_t i = n - capacity_; i < n; ++i) {
        kept.push_back(events_[(next_overwrite_ + i) % n]);
      }
      events_ = std::move(kept);
      next_overwrite_ = 0;
    }
  }

 private:
  TraceRing() { events_.reserve(capacity_); }

  mutable Mutex mu_;
  size_t capacity_ RNE_GUARDED_BY(mu_) = 16384;
  std::vector<SpanEvent> events_ RNE_GUARDED_BY(mu_);
  size_t next_overwrite_ RNE_GUARDED_BY(mu_) = 0;  // oldest once full
  uint64_t dropped_ RNE_GUARDED_BY(mu_) = 0;
};

const Timer& TraceEpoch() {
  static const Timer* const epoch = new Timer();
  return *epoch;
}

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local uint16_t t_span_depth = 0;

}  // namespace

int64_t TraceNowNanos() { return TraceEpoch().ElapsedNanos(); }

void SpanGuard::Begin(const char* name, size_t index, bool indexed) {
  active_ = Enabled();
  if (!active_) return;
  if (indexed) {
    std::snprintf(name_, sizeof(name_), "%s.%zu", name, index);
  } else {
    std::snprintf(name_, sizeof(name_), "%s", name);
  }
  depth_ = t_span_depth++;
  start_ns_ = TraceNowNanos();
}

SpanGuard::SpanGuard(const char* name) { Begin(name, 0, false); }
SpanGuard::SpanGuard(const char* name, size_t index) {
  Begin(name, index, true);
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  SpanEvent ev;
  std::memcpy(ev.name, name_, sizeof(ev.name));
  ev.start_ns = start_ns_;
  ev.dur_ns = TraceNowNanos() - start_ns_;
  ev.tid = TraceThreadId();
  ev.depth = depth_;
  --t_span_depth;
  TraceRing::Global().Append(ev);
}

uint64_t TraceSnapshot(std::vector<SpanEvent>* out) {
  return TraceRing::Global().Snapshot(out);
}

std::string TraceJson() {
  std::vector<SpanEvent> events;
  const uint64_t dropped = TraceSnapshot(&events);
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "{\"dropped\":%" PRIu64 ",\"spans\":[",
                dropped);
  out.append(buf);
  bool first = true;
  for (const SpanEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, ev.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"start_ns\":%" PRId64 ",\"dur_ns\":%" PRId64
                  ",\"tid\":%u,\"depth\":%u}",
                  ev.start_ns, ev.dur_ns, ev.tid, ev.depth);
    out.append(buf);
  }
  out.append("]}");
  return out;
}

std::string TraceChromeJson() {
  std::vector<SpanEvent> events;
  TraceSnapshot(&events);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[96];
  for (const SpanEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, ev.name);
    // chrome://tracing timestamps are microseconds; fractional is accepted.
    out.append(",\"ph\":\"X\",\"ts\":");
    AppendJsonDouble(&out, static_cast<double>(ev.start_ns) / 1e3);
    out.append(",\"dur\":");
    AppendJsonDouble(&out, static_cast<double>(ev.dur_ns) / 1e3);
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u}", ev.tid);
    out.append(buf);
  }
  out.append("]}");
  return out;
}

void ResetTrace() { TraceRing::Global().Reset(); }

size_t TraceRingCapacity() { return TraceRing::Global().capacity(); }
void SetTraceRingCapacity(size_t capacity) {
  TraceRing::Global().set_capacity(capacity);
}

}  // namespace rne::obs
