#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <thread>

namespace rne::obs {
namespace {

std::atomic<bool> g_enabled{true};

/// Small dense thread ids (0, 1, 2, ...) for shard selection; std::thread::id
/// hashes unevenly on some platforms.
uint32_t DenseThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void LatencyStat::Record(int64_t nanos) {
  Shard& s = shards_[DenseThreadId() % kShards];
  MutexLock lock(&s.mu);
  s.hist.Record(nanos);
}

void LatencyStat::Merge(const LatencyHistogram& local) {
  Shard& s = shards_[DenseThreadId() % kShards];
  MutexLock lock(&s.mu);
  s.hist.Merge(local);
}

LatencyHistogram LatencyStat::Snapshot() const {
  LatencyHistogram out;
  for (const Shard& s : shards_) {
    MutexLock lock(&s.mu);
    out.Merge(s.hist);
  }
  return out;
}

void LatencyStat::Reset() {
  for (Shard& s : shards_) {
    MutexLock lock(&s.mu);
    s.hist.Reset();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyStat* MetricsRegistry::GetLatency(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LatencyStat>();
  return slot.get();
}

void AppendJsonDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("0");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to a friendlier representation when it round-trips exactly.
  char shorter[40];
  std::snprintf(shorter, sizeof(shorter), "%.6g", v);
  double back = 0.0;
  std::sscanf(shorter, "%lf", &back);
  out->append(back == v ? shorter : buf);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, c->Value());
    out.append(buf);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendJsonDouble(&out, g->Value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : latencies_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    const LatencyHistogram hist = h->Snapshot();
    char buf[64];
    std::snprintf(buf, sizeof(buf), ":{\"count\":%zu,\"mean_ns\":",
                  hist.TotalCount());
    out.append(buf);
    AppendJsonDouble(&out, hist.MeanNanos());
    out.append(",\"p50_ns\":");
    AppendJsonDouble(&out, hist.PercentileNanos(50));
    out.append(",\"p95_ns\":");
    AppendJsonDouble(&out, hist.PercentileNanos(95));
    out.append(",\"p99_ns\":");
    AppendJsonDouble(&out, hist.PercentileNanos(99));
    std::snprintf(buf, sizeof(buf), ",\"max_ns\":%" PRId64 "}",
                  hist.MaxNanos());
    out.append(buf);
  }
  out.append("}}");
  return out;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : latencies_) h->Reset();
}

}  // namespace rne::obs
