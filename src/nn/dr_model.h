// DR (DeepWalk Regression) baseline from the paper's Fig 14 ablation:
// concatenate [f_s, f_t, |f_s - f_t|] where f_v = DeepWalk(v) ++ (x, y),
// and regress the shortest distance with a fully-connected network sized to
// ~1K / ~10K / ~100K parameters (DR-1K / DR-10K / DR-100K).
#ifndef RNE_NN_DR_MODEL_H_
#define RNE_NN_DR_MODEL_H_

#include <memory>
#include <vector>

#include "algo/distance_sampler.h"
#include "nn/deepwalk.h"
#include "nn/mlp.h"

namespace rne {

struct DrConfig {
  DeepWalkConfig deepwalk;
  /// Approximate parameter budget of the regression head (1K/10K/100K).
  size_t target_params = 10000;
  size_t epochs = 10;
  double lr = 0.01;
  uint64_t seed = 31;
};

class DrModel {
 public:
  /// Trains the DeepWalk features immediately; the regression head trains in
  /// Train().
  DrModel(const Graph& g, const DrConfig& config);

  /// SGD over the samples (distances normalized internally like RNE).
  void Train(const std::vector<DistanceSample>& samples);

  /// Predicted shortest distance in the edge-weight unit.
  double Query(VertexId s, VertexId t);

  /// Mean relative error on exact samples.
  double MeanRelativeError(const std::vector<DistanceSample>& val);

  size_t NumParams() const { return mlp_->NumParams(); }
  /// Feature-matrix + network footprint.
  size_t IndexBytes() const;

 private:
  void BuildFeature(VertexId s, VertexId t);

  const Graph& g_;
  DrConfig config_;
  EmbeddingMatrix features_;  // DeepWalk dim + 2 normalized coords per vertex
  std::unique_ptr<Mlp> mlp_;
  Rng rng_;
  double scale_ = 0.0;
  std::vector<float> feature_buf_;
};

}  // namespace rne

#endif  // RNE_NN_DR_MODEL_H_
