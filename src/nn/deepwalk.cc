#include "nn/deepwalk.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace rne {

namespace {

/// Fast sigmoid with clamping (standard word2vec trick, here exact).
double Sigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

EmbeddingMatrix TrainDeepWalk(const Graph& g, const DeepWalkConfig& config) {
  const size_t n = g.NumVertices();
  RNE_CHECK(n >= 2);
  Rng rng(config.seed);

  // Input ("center") and output ("context") embeddings.
  EmbeddingMatrix in(n, config.dim);
  EmbeddingMatrix out(n, config.dim);
  in.RandomInit(rng, 0.5 / static_cast<double>(config.dim));
  // `out` stays zero-initialized, as in word2vec.

  // Degree-proportional negative-sampling table (unigram^1 is adequate here).
  std::vector<VertexId> neg_table;
  neg_table.reserve(g.NumHalfEdges());
  for (VertexId v = 0; v < n; ++v) {
    for (size_t i = 0; i < g.Degree(v); ++i) neg_table.push_back(v);
  }

  std::vector<VertexId> walk(config.walk_length);
  std::vector<double> grad_center(config.dim);
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;

  auto train_pair = [&](VertexId center, VertexId context, double label,
                        double lr) {
    auto ci = in.Row(center);
    auto co = out.Row(context);
    double dot = 0.0;
    for (size_t d = 0; d < config.dim; ++d) dot += ci[d] * co[d];
    const double grad = (Sigmoid(dot) - label) * lr;
    for (size_t d = 0; d < config.dim; ++d) {
      grad_center[d] += grad * co[d];
      co[d] -= static_cast<float>(grad * ci[d]);
    }
  };

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const double lr = config.lr *
                      (1.0 - 0.9 * static_cast<double>(epoch) /
                                 static_cast<double>(config.epochs));
    rng.Shuffle(order);
    for (const VertexId start : order) {
      for (size_t w = 0; w < config.walks_per_vertex; ++w) {
        // Uniform random walk.
        walk[0] = start;
        for (size_t step = 1; step < config.walk_length; ++step) {
          const auto nbrs = g.Neighbors(walk[step - 1]);
          if (nbrs.empty()) {
            walk.resize(step);
            break;
          }
          walk[step] = nbrs[rng.UniformIndex(nbrs.size())].to;
        }
        // Skip-gram over the walk.
        for (size_t i = 0; i < walk.size(); ++i) {
          const size_t lo = i >= config.window ? i - config.window : 0;
          const size_t hi = std::min(walk.size(), i + config.window + 1);
          for (size_t j = lo; j < hi; ++j) {
            if (j == i || walk[j] == walk[i]) continue;
            std::fill(grad_center.begin(), grad_center.end(), 0.0);
            train_pair(walk[i], walk[j], 1.0, lr);
            for (size_t k = 0; k < config.negatives; ++k) {
              const VertexId neg =
                  neg_table[rng.UniformIndex(neg_table.size())];
              if (neg == walk[j]) continue;
              train_pair(walk[i], neg, 0.0, lr);
            }
            auto ci = in.Row(walk[i]);
            for (size_t d = 0; d < config.dim; ++d) {
              ci[d] -= static_cast<float>(grad_center[d]);
            }
          }
        }
        walk.resize(config.walk_length);
      }
    }
  }
  return in;
}

}  // namespace rne
