#include "nn/dr_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rne {

DrModel::DrModel(const Graph& g, const DrConfig& config)
    : g_(g), config_(config), rng_(config.seed) {
  const EmbeddingMatrix dw = TrainDeepWalk(g, config.deepwalk);
  // Per-vertex feature: DeepWalk vector ++ coordinates normalized to [0, 1].
  double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
  for (const Point& p : g.coords()) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double wx = std::max(max_x - min_x, 1e-9);
  const double wy = std::max(max_y - min_y, 1e-9);
  const size_t fdim = dw.dim() + 2;
  features_ = EmbeddingMatrix(g.NumVertices(), fdim);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto row = features_.Row(v);
    std::copy(dw.Row(v).begin(), dw.Row(v).end(), row.begin());
    row[fdim - 2] = static_cast<float>((g.Coord(v).x - min_x) / wx);
    row[fdim - 1] = static_cast<float>((g.Coord(v).y - min_y) / wy);
  }

  // Head sized to the parameter budget: one hidden layer of h units has
  // (input + 2) * h + 1 parameters with input = 3 * fdim.
  const size_t input = 3 * fdim;
  const size_t hidden = std::max<size_t>(
      2, config_.target_params / (input + 2));
  mlp_ = std::make_unique<Mlp>(std::vector<size_t>{input, hidden, 1}, rng_);
  feature_buf_.resize(input);
}

void DrModel::BuildFeature(VertexId s, VertexId t) {
  const auto fs = features_.Row(s);
  const auto ft = features_.Row(t);
  const size_t fdim = features_.dim();
  for (size_t i = 0; i < fdim; ++i) {
    feature_buf_[i] = fs[i];
    feature_buf_[fdim + i] = ft[i];
    feature_buf_[2 * fdim + i] = std::abs(fs[i] - ft[i]);
  }
}

void DrModel::Train(const std::vector<DistanceSample>& samples) {
  if (samples.empty()) return;
  if (scale_ == 0.0) {
    double sum = 0.0;
    size_t count = 0;
    for (const DistanceSample& s : samples) {
      if (s.dist > 0.0 && s.dist != kInfDistance) {
        sum += s.dist;
        ++count;
      }
    }
    RNE_CHECK(count > 0);
    scale_ = sum / static_cast<double>(count);
  }
  std::vector<uint32_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    const double lr = config_.lr *
                      (1.0 - 0.8 * static_cast<double>(epoch) /
                                 static_cast<double>(config_.epochs));
    for (const uint32_t idx : order) {
      const DistanceSample& s = samples[idx];
      if (s.dist == kInfDistance) continue;
      BuildFeature(s.s, s.t);
      mlp_->TrainStep(feature_buf_, s.dist / scale_, lr);
    }
  }
}

double DrModel::Query(VertexId s, VertexId t) {
  if (s == t) return 0.0;
  BuildFeature(s, t);
  return std::max(0.0, mlp_->Forward(feature_buf_)) * scale_;
}

double DrModel::MeanRelativeError(const std::vector<DistanceSample>& val) {
  double sum = 0.0;
  size_t count = 0;
  for (const DistanceSample& s : val) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    sum += std::abs(Query(s.s, s.t) - s.dist) / s.dist;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

size_t DrModel::IndexBytes() const {
  return features_.MemoryBytes() + mlp_->NumParams() * sizeof(float);
}

}  // namespace rne
