// Minimal fully-connected regression network with manual backpropagation.
//
// Used by the DR baseline (Fig 14): the paper regresses shortest distances
// from concatenated DeepWalk vectors with fully-connected networks of 1K,
// 10K, and 100K parameters. The analytic chain rule for (ReLU MLP, squared
// loss) is short enough that no autodiff framework is warranted.
#ifndef RNE_NN_MLP_H_
#define RNE_NN_MLP_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace rne {

/// Feed-forward net: layer_sizes = {input, hidden..., 1}; ReLU on hidden
/// layers, linear scalar output, squared-error loss.
class Mlp {
 public:
  Mlp(std::vector<size_t> layer_sizes, Rng& rng);

  /// Predicted scalar for input x (size = input layer).
  double Forward(std::span<const float> x);

  /// One SGD step on (x, target); returns the pre-update squared error.
  double TrainStep(std::span<const float> x, double target, double lr);

  size_t NumParams() const { return num_params_; }

 private:
  struct Layer {
    size_t in, out;
    std::vector<float> weights;  // out x in, row-major
    std::vector<float> bias;     // out
  };

  std::vector<Layer> layers_;
  size_t num_params_ = 0;
  // Forward-pass activations (post-ReLU), index 0 = input copy.
  std::vector<std::vector<float>> activations_;
  // Backward-pass deltas per layer output.
  std::vector<std::vector<float>> deltas_;
};

}  // namespace rne

#endif  // RNE_NN_MLP_H_
