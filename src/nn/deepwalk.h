// DeepWalk [23]: truncated random walks + skip-gram with negative sampling.
//
// Produces "social" node embeddings that capture neighborhood co-occurrence.
// The paper uses them (plus coordinates) as the input features of the DR
// regression baseline, demonstrating that similarity embeddings are not
// distance embeddings.
#ifndef RNE_NN_DEEPWALK_H_
#define RNE_NN_DEEPWALK_H_

#include <cstdint>

#include "core/embedding.h"
#include "graph/graph.h"

namespace rne {

struct DeepWalkConfig {
  size_t dim = 64;
  size_t walks_per_vertex = 8;
  size_t walk_length = 30;
  /// Skip-gram window radius.
  size_t window = 5;
  size_t negatives = 4;
  size_t epochs = 2;
  double lr = 0.025;
  uint64_t seed = 29;
};

/// Trains DeepWalk embeddings on the (unweighted) adjacency structure of g.
EmbeddingMatrix TrainDeepWalk(const Graph& g, const DeepWalkConfig& config);

}  // namespace rne

#endif  // RNE_NN_DEEPWALK_H_
