#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace rne {

Mlp::Mlp(std::vector<size_t> layer_sizes, Rng& rng) {
  RNE_CHECK(layer_sizes.size() >= 2);
  RNE_CHECK(layer_sizes.back() == 1);
  layers_.reserve(layer_sizes.size() - 1);
  activations_.resize(layer_sizes.size());
  deltas_.resize(layer_sizes.size());
  for (size_t i = 0; i < layer_sizes.size(); ++i) {
    activations_[i].resize(layer_sizes[i]);
    deltas_[i].resize(layer_sizes[i]);
  }
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    Layer layer;
    layer.in = layer_sizes[i];
    layer.out = layer_sizes[i + 1];
    layer.weights.resize(layer.in * layer.out);
    layer.bias.assign(layer.out, 0.0f);
    // He initialization for the ReLU stack.
    const double stddev = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (float& w : layer.weights) {
      w = static_cast<float>(rng.Normal(0.0, stddev));
    }
    num_params_ += layer.weights.size() + layer.bias.size();
    layers_.push_back(std::move(layer));
  }
}

double Mlp::Forward(std::span<const float> x) {
  RNE_CHECK(x.size() == activations_[0].size());
  std::copy(x.begin(), x.end(), activations_[0].begin());
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const auto& in = activations_[l];
    auto& out = activations_[l + 1];
    const bool last = (l + 1 == layers_.size());
    for (size_t o = 0; o < layer.out; ++o) {
      double sum = layer.bias[o];
      const float* w = layer.weights.data() + o * layer.in;
      for (size_t i = 0; i < layer.in; ++i) sum += w[i] * in[i];
      out[o] = last ? static_cast<float>(sum)
                    : static_cast<float>(std::max(0.0, sum));
    }
  }
  return activations_.back()[0];
}

double Mlp::TrainStep(std::span<const float> x, double target, double lr) {
  const double pred = Forward(x);
  const double err = pred - target;

  // Output delta (linear layer): dL/dz = 2 * err.
  deltas_.back()[0] = static_cast<float>(2.0 * err);
  // Back-propagate through hidden layers (ReLU derivative via activation).
  for (size_t l = layers_.size(); l-- > 0;) {
    const Layer& layer = layers_[l];
    auto& delta_out = deltas_[l + 1];
    auto& delta_in = deltas_[l];
    if (l > 0) {
      std::fill(delta_in.begin(), delta_in.end(), 0.0f);
      for (size_t o = 0; o < layer.out; ++o) {
        const float d = delta_out[o];
        if (d == 0.0f) continue;
        const float* w = layer.weights.data() + o * layer.in;
        for (size_t i = 0; i < layer.in; ++i) delta_in[i] += d * w[i];
      }
      // ReLU gate of layer l's input activations.
      for (size_t i = 0; i < layer.in; ++i) {
        if (activations_[l][i] <= 0.0f) delta_in[i] = 0.0f;
      }
    }
    // Weight update for layer l.
    Layer& mutable_layer = layers_[l];
    const auto& in = activations_[l];
    for (size_t o = 0; o < layer.out; ++o) {
      const float d = delta_out[o];
      if (d == 0.0f) continue;
      float* w = mutable_layer.weights.data() + o * layer.in;
      const float step = static_cast<float>(lr) * d;
      for (size_t i = 0; i < layer.in; ++i) w[i] -= step * in[i];
      mutable_layer.bias[o] -= step;
    }
  }
  return err * err;
}

}  // namespace rne
