#include "graph/graph_builder.h"

#include <algorithm>

namespace rne {

GraphBuilder::GraphBuilder(size_t num_vertices) : coords_(num_vertices) {}

void GraphBuilder::AddEdge(VertexId u, VertexId v, double w) {
  RNE_CHECK(u < coords_.size() && v < coords_.size());
  RNE_CHECK_MSG(w > 0.0, "edge weights must be positive");
  if (u == v) return;
  edges_.push_back({u, v, w});
}

void GraphBuilder::SetCoord(VertexId v, Point p) {
  RNE_CHECK(v < coords_.size());
  coords_[v] = p;
}

Graph GraphBuilder::Build() const {
  const size_t n = coords_.size();
  // Expand to directed half-edges, sort, dedupe keeping min weight.
  std::vector<std::pair<uint64_t, double>> half;
  half.reserve(edges_.size() * 2);
  for (const RawEdge& e : edges_) {
    half.emplace_back((static_cast<uint64_t>(e.u) << 32) | e.v, e.w);
    half.emplace_back((static_cast<uint64_t>(e.v) << 32) | e.u, e.w);
  }
  std::sort(half.begin(), half.end());
  std::vector<std::pair<uint64_t, double>> unique;
  unique.reserve(half.size());
  for (const auto& h : half) {
    if (!unique.empty() && unique.back().first == h.first) {
      unique.back().second = std::min(unique.back().second, h.second);
    } else {
      unique.push_back(h);
    }
  }

  std::vector<uint32_t> offsets(n + 1, 0);
  for (const auto& h : unique) {
    offsets[(h.first >> 32) + 1] += 1;
  }
  for (size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<Edge> csr(unique.size());
  for (size_t i = 0; i < unique.size(); ++i) {
    csr[i] = {static_cast<VertexId>(unique[i].first & 0xffffffffu),
              unique[i].second};
  }
  return Graph(std::move(offsets), std::move(csr), coords_);
}

}  // namespace rne
