#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rne {

Graph::Graph(std::vector<uint32_t> offsets, std::vector<Edge> edges,
             std::vector<Point> coords)
    : offsets_(std::move(offsets)),
      edges_(std::move(edges)),
      coords_(std::move(coords)) {
  RNE_CHECK(offsets_.size() == coords_.size() + 1);
  RNE_CHECK(offsets_.back() == edges_.size());
}

double Graph::EdgeWeight(VertexId u, VertexId v) const {
  const auto adj = Neighbors(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const Edge& e, VertexId target) { return e.to < target; });
  if (it != adj.end() && it->to == v) return it->weight;
  return kInfDistance;
}

bool Graph::IsConnected() const {
  const size_t n = NumVertices();
  if (n <= 1) return true;
  std::vector<char> seen(n, 0);
  std::vector<VertexId> stack = {0};
  seen[0] = 1;
  size_t visited = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const Edge& e : Neighbors(v)) {
      if (!seen[e.to]) {
        seen[e.to] = 1;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == n;
}

double Graph::TotalWeight() const {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.weight;
  return sum / 2.0;
}

size_t Graph::MemoryBytes() const {
  return offsets_.size() * sizeof(uint32_t) + edges_.size() * sizeof(Edge) +
         coords_.size() * sizeof(Point);
}

double EuclideanDistance(const Graph& g, VertexId u, VertexId v) {
  const Point& a = g.Coord(u);
  const Point& b = g.Coord(v);
  return std::hypot(a.x - b.x, a.y - b.y);
}

double ManhattanDistance(const Graph& g, VertexId u, VertexId v) {
  const Point& a = g.Coord(u);
  const Point& b = g.Coord(v);
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace rne
