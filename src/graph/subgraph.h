// Induced-subgraph extraction, used by the partitioner, the partition
// hierarchy, and the G-tree baseline.
#ifndef RNE_GRAPH_SUBGRAPH_H_
#define RNE_GRAPH_SUBGRAPH_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace rne {

/// Induced subgraph over `vertices` (ids into `g`; duplicates forbidden).
/// Result graph + mapping: new id i corresponds to parent id vertices[i].
std::pair<Graph, std::vector<VertexId>> InducedSubgraph(
    const Graph& g, const std::vector<VertexId>& vertices);

}  // namespace rne

#endif  // RNE_GRAPH_SUBGRAPH_H_
