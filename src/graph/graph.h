// Weighted undirected road-network graph in CSR form.
//
// Road joints are vertices, road segments are edges; each edge carries a
// positive weight (road length) and is stored in both directions (the paper's
// networks are symmetric). Vertices optionally carry planar coordinates used
// by the geometric baselines (Euclidean/Manhattan, A*, KD-tree).
#ifndef RNE_GRAPH_GRAPH_H_
#define RNE_GRAPH_GRAPH_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/macros.h"

namespace rne {

using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel distance for unreachable vertices.
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Planar vertex coordinate (projected longitude/latitude or synthetic x/y),
/// in the same length unit as edge weights.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Outgoing half-edge in the CSR adjacency array.
struct Edge {
  VertexId to = kInvalidVertex;
  double weight = 0.0;
};

/// Immutable CSR graph. Construct through GraphBuilder.
class Graph {
 public:
  Graph() = default;
  Graph(std::vector<uint32_t> offsets, std::vector<Edge> edges,
        std::vector<Point> coords);

  size_t NumVertices() const { return coords_.size(); }
  /// Number of undirected edges (each stored twice internally).
  size_t NumEdges() const { return edges_.size() / 2; }
  /// Number of directed half-edges (CSR entries).
  size_t NumHalfEdges() const { return edges_.size(); }

  /// Adjacency list of `v`, sorted by neighbor id.
  std::span<const Edge> Neighbors(VertexId v) const {
    RNE_DCHECK(v < NumVertices());
    return {edges_.data() + offsets_[v],
            edges_.data() + offsets_[v + 1]};
  }

  size_t Degree(VertexId v) const {
    RNE_DCHECK(v < NumVertices());
    return offsets_[v + 1] - offsets_[v];
  }

  const Point& Coord(VertexId v) const {
    RNE_DCHECK(v < NumVertices());
    return coords_[v];
  }
  const std::vector<Point>& coords() const { return coords_; }

  /// Weight of edge (u,v), or kInfDistance if absent. O(log deg(u)).
  double EdgeWeight(VertexId u, VertexId v) const;

  /// True if every vertex can reach every other (BFS from vertex 0).
  bool IsConnected() const;

  /// Sum of all edge weights (each undirected edge counted once).
  double TotalWeight() const;

  /// Approximate in-memory footprint in bytes.
  size_t MemoryBytes() const;

 private:
  std::vector<uint32_t> offsets_;  // size NumVertices()+1
  std::vector<Edge> edges_;        // both directions
  std::vector<Point> coords_;      // size NumVertices()
};

/// Straight-line (L2) distance between the coordinates of u and v.
double EuclideanDistance(const Graph& g, VertexId u, VertexId v);

/// L1 distance between the coordinates of u and v.
double ManhattanDistance(const Graph& g, VertexId u, VertexId v);

}  // namespace rne

#endif  // RNE_GRAPH_GRAPH_H_
