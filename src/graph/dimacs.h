// 9th DIMACS Implementation Challenge graph I/O (.gr distance graphs plus
// .co coordinate files), the standard interchange format for the road
// networks the paper evaluates on (FLA and US-W come from this challenge).
#ifndef RNE_GRAPH_DIMACS_H_
#define RNE_GRAPH_DIMACS_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace rne {

/// Loads a DIMACS `.gr` file; if `co_path` is non-empty, vertex coordinates
/// are read from the matching `.co` file (otherwise all coords are zero).
/// DIMACS vertices are 1-based; they are converted to 0-based ids.
StatusOr<Graph> LoadDimacs(const std::string& gr_path,
                           const std::string& co_path = "");

/// Writes `g` as a DIMACS `.gr` file (both half-edges as directed arcs) and,
/// if `co_path` is non-empty, the coordinates as a `.co` file.
Status SaveDimacs(const Graph& g, const std::string& gr_path,
                  const std::string& co_path = "");

}  // namespace rne

#endif  // RNE_GRAPH_DIMACS_H_
