#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "graph/graph_builder.h"
#include "util/rng.h"

namespace rne {

namespace {

double Length(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Generates jittered grid coordinates for rows x cols vertices.
std::vector<Point> GridCoords(size_t rows, size_t cols, double spacing,
                              double coord_noise, Rng& rng) {
  std::vector<Point> coords(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double nx = rng.UniformReal(-coord_noise, coord_noise) * spacing;
      const double ny = rng.UniformReal(-coord_noise, coord_noise) * spacing;
      coords[r * cols + c] = {static_cast<double>(c) * spacing + nx,
                              static_cast<double>(r) * spacing + ny};
    }
  }
  return coords;
}

/// Union-find for connectivity restoration.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Graph MakeGridNetwork(size_t rows, size_t cols, double spacing,
                      double weight_jitter, double coord_noise,
                      uint64_t seed) {
  RNE_CHECK(rows >= 2 && cols >= 2);
  Rng rng(seed);
  GraphBuilder builder(rows * cols);
  const auto coords = GridCoords(rows, cols, spacing, coord_noise, rng);
  for (size_t i = 0; i < coords.size(); ++i) {
    builder.SetCoord(static_cast<VertexId>(i), coords[i]);
  }
  auto add = [&](size_t a, size_t b) {
    const double len = Length(coords[a], coords[b]);
    const double w = len * (1.0 + rng.UniformReal(0.0, weight_jitter));
    builder.AddEdge(static_cast<VertexId>(a), static_cast<VertexId>(b), w);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const size_t v = r * cols + c;
      if (c + 1 < cols) add(v, v + 1);
      if (r + 1 < rows) add(v, v + cols);
    }
  }
  return builder.Build();
}

Graph MakeRoadNetwork(const RoadNetworkConfig& cfg) {
  RNE_CHECK(cfg.rows >= 4 && cfg.cols >= 4);
  Rng rng(cfg.seed);
  const size_t n = cfg.rows * cfg.cols;
  GraphBuilder builder(n);
  const auto coords =
      GridCoords(cfg.rows, cfg.cols, cfg.spacing, cfg.coord_noise, rng);
  for (size_t i = 0; i < n; ++i) {
    builder.SetCoord(static_cast<VertexId>(i), coords[i]);
  }

  auto jittered = [&](size_t a, size_t b) {
    return Length(coords[a], coords[b]) *
           (1.0 + rng.UniformReal(0.0, cfg.weight_jitter));
  };

  // Grid edges, each surviving with probability 1 - removal_fraction.
  // Removed edges are remembered so connectivity can be restored.
  struct Candidate {
    size_t a;
    size_t b;
  };
  std::vector<Candidate> removed;
  DisjointSet dsu(n);
  for (size_t r = 0; r < cfg.rows; ++r) {
    for (size_t c = 0; c < cfg.cols; ++c) {
      const size_t v = r * cfg.cols + c;
      for (const size_t u :
           {c + 1 < cfg.cols ? v + 1 : n, r + 1 < cfg.rows ? v + cfg.cols : n}) {
        if (u >= n) continue;
        if (rng.Bernoulli(cfg.removal_fraction)) {
          removed.push_back({v, u});
        } else {
          builder.AddEdge(static_cast<VertexId>(v), static_cast<VertexId>(u),
                          jittered(v, u));
          dsu.Union(v, u);
        }
      }
    }
  }
  // Restore connectivity: re-add removed edges that join different components.
  rng.Shuffle(removed);
  for (const Candidate& cand : removed) {
    if (dsu.Union(cand.a, cand.b)) {
      builder.AddEdge(static_cast<VertexId>(cand.a),
                      static_cast<VertexId>(cand.b), jittered(cand.a, cand.b));
    }
  }

  // Diagonal streets inside random cells.
  for (size_t r = 0; r + 1 < cfg.rows; ++r) {
    for (size_t c = 0; c + 1 < cfg.cols; ++c) {
      if (!rng.Bernoulli(cfg.diagonal_fraction)) continue;
      const size_t v = r * cfg.cols + c;
      if (rng.Bernoulli(0.5)) {
        builder.AddEdge(static_cast<VertexId>(v),
                        static_cast<VertexId>(v + cfg.cols + 1),
                        jittered(v, v + cfg.cols + 1));
      } else {
        builder.AddEdge(static_cast<VertexId>(v + 1),
                        static_cast<VertexId>(v + cfg.cols),
                        jittered(v + 1, v + cfg.cols));
      }
    }
  }

  // Highways: straight polylines across the grid that hop `stride` cells per
  // segment with near-straight-line weight, modeling fast arterial roads.
  for (size_t h = 0; h < cfg.num_highways; ++h) {
    const bool horizontal = rng.Bernoulli(0.5);
    const size_t stride = 2 + rng.UniformIndex(3);
    if (horizontal) {
      const size_t r = rng.UniformIndex(cfg.rows);
      for (size_t c = 0; c + stride < cfg.cols; c += stride) {
        const size_t a = r * cfg.cols + c;
        const size_t b = r * cfg.cols + c + stride;
        builder.AddEdge(static_cast<VertexId>(a), static_cast<VertexId>(b),
                        Length(coords[a], coords[b]) * 1.02);
      }
    } else {
      const size_t c = rng.UniformIndex(cfg.cols);
      for (size_t r = 0; r + stride < cfg.rows; r += stride) {
        const size_t a = r * cfg.cols + c;
        const size_t b = (r + stride) * cfg.cols + c;
        builder.AddEdge(static_cast<VertexId>(a), static_cast<VertexId>(b),
                        Length(coords[a], coords[b]) * 1.02);
      }
    }
  }

  Graph g = builder.Build();
  RNE_CHECK_MSG(g.IsConnected(), "road network generator must stay connected");
  return g;
}

Graph MakeRandomGeometricNetwork(size_t n, size_t k, double extent,
                                 double weight_jitter, uint64_t seed) {
  RNE_CHECK(n >= 2 && k >= 1);
  Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p = {rng.UniformReal(0.0, extent), rng.UniformReal(0.0, extent)};
  }
  GraphBuilder builder(n);
  for (size_t i = 0; i < n; ++i) builder.SetCoord(static_cast<VertexId>(i), pts[i]);

  // k-nearest-neighbor edges via brute force (generator is offline tooling).
  std::vector<std::pair<double, size_t>> dists(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dists[j] = {i == j ? kInfDistance : Length(pts[i], pts[j]), j};
    }
    const size_t kk = std::min(k, n - 1);
    std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(kk),
                      dists.end());
    for (size_t t = 0; t < kk; ++t) {
      const double w =
          dists[t].first * (1.0 + rng.UniformReal(0.0, weight_jitter));
      builder.AddEdge(static_cast<VertexId>(i),
                      static_cast<VertexId>(dists[t].second), w);
    }
  }
  return LargestConnectedComponent(builder.Build()).first;
}

std::pair<Graph, std::vector<VertexId>> LargestConnectedComponent(
    const Graph& g) {
  const size_t n = g.NumVertices();
  std::vector<uint32_t> comp(n, kInvalidVertex);
  uint32_t num_comps = 0;
  std::vector<size_t> comp_size;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidVertex) continue;
    comp[s] = num_comps;
    size_t size = 1;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const Edge& e : g.Neighbors(v)) {
        if (comp[e.to] == kInvalidVertex) {
          comp[e.to] = num_comps;
          ++size;
          stack.push_back(e.to);
        }
      }
    }
    comp_size.push_back(size);
    ++num_comps;
  }
  const uint32_t best = static_cast<uint32_t>(std::distance(
      comp_size.begin(), std::max_element(comp_size.begin(), comp_size.end())));

  std::vector<VertexId> to_parent;
  to_parent.reserve(comp_size[best]);
  std::vector<VertexId> to_child(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (comp[v] == best) {
      to_child[v] = static_cast<VertexId>(to_parent.size());
      to_parent.push_back(v);
    }
  }
  GraphBuilder builder(to_parent.size());
  for (VertexId nv = 0; nv < to_parent.size(); ++nv) {
    const VertexId old = to_parent[nv];
    builder.SetCoord(nv, g.Coord(old));
    for (const Edge& e : g.Neighbors(old)) {
      if (to_child[e.to] != kInvalidVertex && old < e.to) {
        builder.AddEdge(nv, to_child[e.to], e.weight);
      }
    }
  }
  return {builder.Build(), std::move(to_parent)};
}

}  // namespace rne
