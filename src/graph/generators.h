// Synthetic road-network generators.
//
// The paper evaluates on proprietary/large real road networks (BJ, FLA, US-W).
// These generators produce planar, grid-like weighted graphs with the same
// structural properties RNE exploits: near-planar layout, locally sparse
// connectivity, heterogeneous edge weights, and long-range "highway" shortcuts.
// Real DIMACS data (graph/dimacs.h) can be substituted when available.
#ifndef RNE_GRAPH_GENERATORS_H_
#define RNE_GRAPH_GENERATORS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace rne {

/// Plain 4-connected grid of `rows` x `cols` vertices with `spacing` between
/// neighbors. Each edge weight is its geometric length scaled by a uniform
/// jitter in [1, 1 + weight_jitter]. Coordinates receive positional noise of
/// up to `coord_noise * spacing`.
Graph MakeGridNetwork(size_t rows, size_t cols, double spacing = 100.0,
                      double weight_jitter = 0.3, double coord_noise = 0.2,
                      uint64_t seed = 1);

/// Configuration for the full synthetic road network.
struct RoadNetworkConfig {
  size_t rows = 64;
  size_t cols = 64;
  /// Distance between adjacent grid points (meters).
  double spacing = 100.0;
  /// Fraction of grid edges removed (creates irregular blocks). Connectivity
  /// is restored afterwards by re-adding removed edges along a spanning tree.
  double removal_fraction = 0.25;
  /// Fraction of grid cells receiving a diagonal street.
  double diagonal_fraction = 0.1;
  /// Number of long "highway" polylines overlaid on the grid. Highway
  /// segments hop several grid cells with weight close to straight-line
  /// length, creating the fast long-range paths real road networks have.
  size_t num_highways = 4;
  /// Multiplicative jitter on edge weights.
  double weight_jitter = 0.3;
  /// Positional noise as a fraction of spacing.
  double coord_noise = 0.25;
  uint64_t seed = 1;
};

/// Irregular road-like network: perturbed grid + diagonals + highway overlay.
/// The result is always connected.
Graph MakeRoadNetwork(const RoadNetworkConfig& config);

/// Random geometric graph: n points uniform in [0, extent]^2, each connected
/// to its k nearest neighbors (edge weight = Euclidean length * jitter).
/// Returns the largest connected component.
Graph MakeRandomGeometricNetwork(size_t n, size_t k = 4,
                                 double extent = 10000.0,
                                 double weight_jitter = 0.2,
                                 uint64_t seed = 1);

/// Extracts the largest connected component. Returns the component graph and
/// the mapping from new vertex ids to ids in `g`.
std::pair<Graph, std::vector<VertexId>> LargestConnectedComponent(
    const Graph& g);

}  // namespace rne

#endif  // RNE_GRAPH_GENERATORS_H_
