// Mutable edge-list accumulator that produces an immutable CSR Graph.
#ifndef RNE_GRAPH_GRAPH_BUILDER_H_
#define RNE_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"

namespace rne {

/// Accumulates undirected weighted edges and vertex coordinates, then builds
/// a CSR Graph. Duplicate edges keep the minimum weight; self-loops are
/// dropped. Edge weights must be positive.
class GraphBuilder {
 public:
  explicit GraphBuilder(size_t num_vertices);

  size_t num_vertices() const { return coords_.size(); }

  /// Adds the undirected edge {u, v} with weight w > 0.
  void AddEdge(VertexId u, VertexId v, double w);

  void SetCoord(VertexId v, Point p);

  /// Builds the CSR graph. The builder can be reused afterwards.
  Graph Build() const;

 private:
  struct RawEdge {
    VertexId u;
    VertexId v;
    double w;
  };
  std::vector<RawEdge> edges_;
  std::vector<Point> coords_;
};

}  // namespace rne

#endif  // RNE_GRAPH_GRAPH_BUILDER_H_
