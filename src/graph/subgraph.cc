#include "graph/subgraph.h"

#include "graph/graph_builder.h"

namespace rne {

std::pair<Graph, std::vector<VertexId>> InducedSubgraph(
    const Graph& g, const std::vector<VertexId>& vertices) {
  std::vector<VertexId> to_child(g.NumVertices(), kInvalidVertex);
  for (size_t i = 0; i < vertices.size(); ++i) {
    RNE_CHECK(vertices[i] < g.NumVertices());
    RNE_CHECK_MSG(to_child[vertices[i]] == kInvalidVertex,
                  "duplicate vertex in InducedSubgraph");
    to_child[vertices[i]] = static_cast<VertexId>(i);
  }
  GraphBuilder builder(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    const VertexId old = vertices[i];
    builder.SetCoord(static_cast<VertexId>(i), g.Coord(old));
    for (const Edge& e : g.Neighbors(old)) {
      if (to_child[e.to] != kInvalidVertex && old < e.to) {
        builder.AddEdge(static_cast<VertexId>(i), to_child[e.to], e.weight);
      }
    }
  }
  return {builder.Build(), vertices};
}

}  // namespace rne
