#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <signal.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string_view>
#include <thread>
#include <vector>

#include "net/fd.h"
#include "obs/metrics.h"

namespace rne::net {
namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + strerror(errno);
}

}  // namespace

struct TcpServer::Connection {
  Connection(serve::QueryEngine& engine, const serve::ServerLoopOptions& loop)
      : handler(engine, loop) {}

  int fd = -1;
  serve::LineProtocolHandler handler;
  /// handler.frames() already mirrored into the server's net.lines counter.
  size_t frames_counted = 0;
  /// Answer bytes not yet accepted by the kernel; [out_off, size) is live.
  std::string out;
  size_t out_off = 0;
  bool want_write = false;
  /// Peer sent EOF (or drain started): close as soon as `out` is flushed.
  bool closing = false;
  std::chrono::steady_clock::time_point last_active;
};

TcpServer::TcpServer(serve::QueryEngine& engine,
                     const TcpServerOptions& options)
    : engine_(engine), options_(options) {
  // Every handler reports this server's live connection count via STATS.
  options_.loop.active_connections = &active_;
  // Line framing lives in the handler (serve::LineProtocolHandler::Consume);
  // the server's oversize limit is the one the handler enforces.
  options_.loop.max_line_bytes = options_.max_line_bytes;
}

TcpServer::~TcpServer() {
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) CloseConnection(fd, CloseReason::kNormal);
  if (epoll_fd_ >= 0) CloseFd(epoll_fd_);
  if (listen_fd_ >= 0) CloseFd(listen_fd_);
}

Status TcpServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("TcpServer already started");
  }
  // A peer that disappears mid-write must surface as EPIPE on the write
  // path, not kill the process.
  (void)signal(SIGPIPE, SIG_IGN);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError(ErrnoMessage("bind"));
    CloseFd(fd);
    return status;
  }
  if (listen(fd, options_.backlog) < 0) {
    const Status status = Status::IoError(ErrnoMessage("listen"));
    CloseFd(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status status = Status::IoError(ErrnoMessage("getsockname"));
    CloseFd(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (SetNonBlocking(fd) < 0) {
    const Status status = Status::IoError(ErrnoMessage("fcntl"));
    CloseFd(fd);
    return status;
  }
  const int efd = epoll_create1(0);
  if (efd < 0) {
    const Status status = Status::IoError(ErrnoMessage("epoll_create1"));
    CloseFd(fd);
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(efd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    const Status status = Status::IoError(ErrnoMessage("epoll_ctl"));
    CloseFd(efd);
    CloseFd(fd);
    return status;
  }
  listen_fd_ = fd;
  epoll_fd_ = efd;
  return Status::Ok();
}

bool TcpServer::StopRequested() const {
  if (shutdown_.load(std::memory_order_acquire)) return true;
  return options_.loop.stop != nullptr &&
         options_.loop.stop->load(std::memory_order_acquire);
}

Status TcpServer::Serve() {
  if (listen_fd_ < 0 || epoll_fd_ < 0) {
    return Status::FailedPrecondition("TcpServer::Start() has not succeeded");
  }
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  const int timeout_ms = static_cast<int>(options_.poll_interval.count());
  while (!StopRequested()) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal — loop re-checks the stop flag
      return Status::IoError(ErrnoMessage("epoll_wait"));
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      // An earlier event in this batch may have closed the connection.
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        if (!HandleReadable(conn)) continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        conn->last_active = std::chrono::steady_clock::now();
        if (!FlushWrites(conn)) continue;
      }
    }
    if (options_.idle_timeout.count() > 0) SweepIdle();
  }
  // Graceful drain: stop accepting first, then flush what we owe.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  DrainAndCloseAll();
  CloseFd(epoll_fd_);
  epoll_fd_ = -1;
  return Status::Ok();
}

void TcpServer::AcceptNew() {
  for (;;) {
    const int fd = AcceptFd(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == ECONNABORTED) continue;  // peer vanished mid-handshake
      return;  // EAGAIN (drained) or a transient accept error; epoll re-arms
    }
    if (connections_.size() >= options_.max_connections) {
      CloseFd(fd);
      refused_.Add(1);
      RNE_COUNTER_ADD("net.refused", 1);
      continue;
    }
    if (SetNonBlocking(fd) < 0) {
      CloseFd(fd);
      continue;
    }
    if (options_.send_buffer_bytes > 0) {
      const int v = options_.send_buffer_bytes;
      (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      CloseFd(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>(engine_, options_.loop);
    conn->fd = fd;
    conn->last_active = std::chrono::steady_clock::now();
    connections_.emplace(fd, std::move(conn));
    active_.store(connections_.size(), std::memory_order_release);
    RNE_GAUGE_SET("net.active_connections",
                  static_cast<double>(connections_.size()));
    accepted_.Add(1);
    RNE_COUNTER_ADD("net.accepted", 1);
  }
}

bool TcpServer::HandleReadable(Connection* conn) {
  conn->last_active = std::chrono::steady_clock::now();
  char buf[16 * 1024];
  bool saw_eof = false;
  bool oversize = false;
  // Byte cap per event, not read-until-EAGAIN: a client that writes faster
  // than the engine serves would otherwise pin the reactor in this loop
  // (and grow the framing buffer unboundedly) before a single answer went
  // out. Level-triggered epoll re-signals immediately for the remainder.
  size_t budget = 16 * sizeof(buf);
  for (;;) {
    if (budget == 0) break;
    const ssize_t n =
        ReadFd(conn->fd, buf, std::min(sizeof(buf), budget));
    if (n > 0) {
      budget -= static_cast<size_t>(n);
      bytes_in_.Add(static_cast<uint64_t>(n));
      RNE_COUNTER_ADD("net.bytes_in", n);
      // Framing (line splitting, CRLF, the oversize limit) lives in the
      // handler so the TCP path and the fuzzer exercise the same code.
      if (!conn->handler.Consume(std::string_view(buf, static_cast<size_t>(n)),
                                 &conn->out)) {
        oversize = true;
        break;
      }
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn->fd, CloseReason::kNormal);
    return false;
  }
  const size_t frames = conn->handler.frames();
  if (frames > conn->frames_counted) {
    const uint64_t delta = frames - conn->frames_counted;
    conn->frames_counted = frames;
    lines_.Add(delta);
    RNE_COUNTER_ADD("net.lines", delta);
  }
  if (oversize) {
    // Consume already flushed owed answers and appended the ERR line.
    conn->closing = true;
    if (FlushWrites(conn)) {
      CloseConnection(conn->fd, CloseReason::kOversize);
    } else {
      evicted_oversize_.Add(1);
      RNE_COUNTER_ADD("net.evicted_oversize", 1);
    }
    return false;
  }
  if (saw_eof) {
    // Peer is done sending: account any unterminated final line and answer
    // everything owed before the close.
    conn->handler.Finish(&conn->out);
    conn->closing = true;
  } else {
    // The read side went dry: flush the half-full batch so a synchronous
    // client gets its answer now instead of after the next arrival.
    conn->handler.Flush(&conn->out);
  }
  return FlushWrites(conn);
}

bool TcpServer::FlushWrites(Connection* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = WriteFd(conn->fd, conn->out.data() + conn->out_off,
                              conn->out.size() - conn->out_off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn->fd, CloseReason::kNormal);
      return false;
    }
    conn->out_off += static_cast<size_t>(n);
    bytes_out_.Add(static_cast<uint64_t>(n));
    RNE_COUNTER_ADD("net.bytes_out", n);
  }
  if (conn->out_off >= conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
  } else if (conn->out_off > 64 * 1024) {
    // Reclaim the consumed prefix so a long-lived slow reader does not pin
    // already-delivered bytes.
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  const size_t backlog = conn->out.size() - conn->out_off;
  if (backlog > options_.write_buffer_cap) {
    CloseConnection(conn->fd, CloseReason::kSlow);
    return false;
  }
  if (backlog == 0 && conn->closing) {
    CloseConnection(conn->fd, CloseReason::kNormal);
    return false;
  }
  const bool want = backlog > 0;
  if (want != conn->want_write) {
    conn->want_write = want;
    UpdateEpollInterest(conn);
  }
  return true;
}

void TcpServer::UpdateEpollInterest(Connection* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpServer::CloseConnection(int fd, CloseReason reason) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (epoll_fd_ >= 0) epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  CloseFd(fd);
  connections_.erase(it);
  active_.store(connections_.size(), std::memory_order_release);
  RNE_GAUGE_SET("net.active_connections",
                static_cast<double>(connections_.size()));
  closed_.Add(1);
  RNE_COUNTER_ADD("net.closed", 1);
  switch (reason) {
    case CloseReason::kNormal:
      break;
    case CloseReason::kSlow:
      evicted_slow_.Add(1);
      RNE_COUNTER_ADD("net.evicted_slow", 1);
      break;
    case CloseReason::kIdle:
      evicted_idle_.Add(1);
      RNE_COUNTER_ADD("net.evicted_idle", 1);
      break;
    case CloseReason::kOversize:
      evicted_oversize_.Add(1);
      RNE_COUNTER_ADD("net.evicted_oversize", 1);
      break;
  }
}

void TcpServer::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    if (now - conn->last_active >= options_.idle_timeout) idle.push_back(fd);
  }
  for (const int fd : idle) CloseConnection(fd, CloseReason::kIdle);
}

void TcpServer::DrainAndCloseAll() {
  // Answer everything already parsed (dropping — and counting — any
  // unterminated partial line), then give the kernel a bounded window to
  // accept the buffered bytes before hard-closing.
  for (auto& [fd, conn] : connections_) {
    conn->handler.Finish(&conn->out);
    conn->closing = true;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while (!connections_.empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    for (const int fd : fds) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      (void)FlushWrites(it->second.get());  // closes the fd once drained
    }
    if (connections_.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) CloseConnection(fd, CloseReason::kNormal);
}

NetStatsSnapshot TcpServer::Stats() const {
  NetStatsSnapshot s;
  s.accepted = accepted_.Value();
  s.closed = closed_.Value();
  s.refused = refused_.Value();
  s.evicted_slow = evicted_slow_.Value();
  s.evicted_idle = evicted_idle_.Value();
  s.evicted_oversize = evicted_oversize_.Value();
  s.lines = lines_.Value();
  s.bytes_in = bytes_in_.Value();
  s.bytes_out = bytes_out_.Value();
  s.active_connections = active_.load(std::memory_order_acquire);
  return s;
}

}  // namespace rne::net
