// Epoll-based TCP front end for the serving stack (DESIGN.md §13): a
// single-threaded, level-triggered reactor that speaks the same
// newline-delimited protocol as the stdin loop, one
// serve::LineProtocolHandler per connection.
//
// Threading model: the reactor thread owns every socket and all connection
// state — reads, line parsing, and write buffering never race. The heavy
// lifting (QueryBatch) runs inline on the reactor thread but fans the batch
// out onto the engine's ThreadPool, so CPU parallelism comes from batching,
// not from per-connection threads. Pipelined clients amortize a whole batch
// per read burst; a half-full batch is flushed as soon as the read side
// goes dry, so a lone synchronous client never waits on a timer.
//
// Protection against misbehaving clients:
//   * Slow-client eviction — answers buffer in userspace when the socket's
//     send buffer is full; a connection whose backlog exceeds
//     `write_buffer_cap` is dropped (counted net.evicted_slow) instead of
//     growing without bound.
//   * Oversized lines — a line longer than `max_line_bytes` with no newline
//     gets one ERR and the connection is closed (net.evicted_oversize).
//   * Idle timeout — connections silent for `idle_timeout` are reaped
//     (net.evicted_idle); 0 disables.
//   * Connection cap — accepts beyond `max_connections` are closed
//     immediately (net.refused).
//
// Graceful drain: Shutdown() (or the shared `loop.stop` flag set by
// rne_server's SIGINT/SIGTERM handlers) makes Serve() stop accepting,
// flush every connection's pending batch, attempt a bounded best-effort
// write of buffered answers, close everything, and return.
#ifndef RNE_NET_TCP_SERVER_H_
#define RNE_NET_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/server_loop.h"
#include "util/status.h"

namespace rne::net {

struct TcpServerOptions {
  /// Port to bind (loopback-only). 0 = ephemeral; read the outcome from
  /// port() after Start().
  uint16_t port = 0;
  int backlog = 128;
  /// Accepts beyond this are closed immediately (counted net.refused).
  size_t max_connections = 1024;
  /// A line longer than this without a newline answers ERR and closes the
  /// connection.
  size_t max_line_bytes = 64 * 1024;
  /// Userspace write-backlog cap per connection; exceeding it evicts the
  /// client (it is not reading its answers).
  size_t write_buffer_cap = 4 * 1024 * 1024;
  /// SO_SNDBUF for accepted sockets (0 = OS default). Tests shrink it so a
  /// non-reading client backs up into the userspace buffer quickly.
  int send_buffer_bytes = 0;
  /// Reap connections with no traffic for this long (0 = never).
  std::chrono::milliseconds idle_timeout{0};
  /// epoll_wait timeout — the latency floor for noticing stop/idle sweeps.
  std::chrono::milliseconds poll_interval{50};
  /// Protocol options shared with the stdin loop (batch size, model
  /// manager, result cache, stop flag). `active_connections` is overwritten
  /// to point at this server's own counter.
  serve::ServerLoopOptions loop;
};

/// Point-in-time reactor counters (mirrored into the global registry under
/// "net.*").
struct NetStatsSnapshot {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t refused = 0;
  uint64_t evicted_slow = 0;
  uint64_t evicted_idle = 0;
  uint64_t evicted_oversize = 0;
  uint64_t lines = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  size_t active_connections = 0;
};

class TcpServer {
 public:
  /// `engine` is not owned and must outlive the server; so must every
  /// pointer inside `options.loop`.
  TcpServer(serve::QueryEngine& engine, const TcpServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens on 127.0.0.1:<port>. After Ok, port() returns the
  /// bound port (resolves ephemeral port 0).
  Status Start();

  /// Runs the reactor until Shutdown() or the external stop flag; returns
  /// after the graceful drain finished. FailedPrecondition unless Start()
  /// succeeded. Call from exactly one thread.
  Status Serve();

  /// Asks Serve() to drain and return. Safe from any thread and from
  /// signal-handler-adjacent contexts (it only stores an atomic).
  void Shutdown() { shutdown_.store(true, std::memory_order_release); }

  uint16_t port() const { return port_; }
  NetStatsSnapshot Stats() const;
  /// Live connection count — STATS wiring and tests.
  const std::atomic<size_t>& active_connections() const { return active_; }

 private:
  struct Connection;

  enum class CloseReason { kNormal, kSlow, kIdle, kOversize };

  bool StopRequested() const;
  void AcceptNew();
  /// Reads until EAGAIN/EOF, handles complete lines, flushes the batch.
  /// Returns false when the connection was closed.
  bool HandleReadable(Connection* conn);
  /// Writes buffered output; arms/disarms EPOLLOUT. Returns false when the
  /// connection was closed (write error or slow-client eviction).
  bool FlushWrites(Connection* conn);
  void UpdateEpollInterest(Connection* conn);
  void CloseConnection(int fd, CloseReason reason);
  void SweepIdle();
  void DrainAndCloseAll();

  serve::QueryEngine& engine_;
  TcpServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> shutdown_{false};
  std::atomic<size_t> active_{0};

  /// Reactor-thread-only state (single-threaded by contract).
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  obs::Counter accepted_;
  obs::Counter closed_;
  obs::Counter refused_;
  obs::Counter evicted_slow_;
  obs::Counter evicted_idle_;
  obs::Counter evicted_oversize_;
  obs::Counter lines_;
  obs::Counter bytes_in_;
  obs::Counter bytes_out_;
};

}  // namespace rne::net

#endif  // RNE_NET_TCP_SERVER_H_
