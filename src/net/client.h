// Minimal blocking TCP client for the line protocol — the counterpart the
// tests and bench_serve's socket legs use to drive net::TcpServer. One
// connection, blocking writes, buffered line reads with an optional receive
// timeout. Not thread-safe; one conversation per instance.
#ifndef RNE_NET_CLIENT_H_
#define RNE_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace rne::net {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Movable: fixtures hand connected clients around by value.
  BlockingClient(BlockingClient&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        buffer_(std::move(other.buffer_)),
        eof_(std::exchange(other.eof_, false)) {}
  BlockingClient& operator=(BlockingClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
      buffer_ = std::move(other.buffer_);
      eof_ = std::exchange(other.eof_, false);
    }
    return *this;
  }

  /// Connects to `host:port`. `host` must be a numeric IPv4 address (or
  /// "localhost"). `recv_timeout` bounds every subsequent ReadLine (0 =
  /// block forever).
  Status Connect(const std::string& host, uint16_t port,
                 std::chrono::milliseconds recv_timeout =
                     std::chrono::milliseconds(0));

  /// Writes the full buffer (append '\n' yourself — pipelined callers send
  /// many lines per call on purpose).
  Status Send(std::string_view data);

  /// Next '\n'-terminated line, without the terminator. NotFound on EOF
  /// with no buffered data, DeadlineExceeded when recv_timeout expires.
  StatusOr<std::string> ReadLine();

  /// Half-closes the write side (server sees EOF) while reads stay open.
  void ShutdownWrite();

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace rne::net

#endif  // RNE_NET_CLIENT_H_
