// EINTR-safe syscall wrappers and small fd utilities for the TCP serving
// path. Every read/write/accept in src/net and the tools goes through these
// helpers — rne_server installs its SIGINT/SIGTERM handlers *without*
// SA_RESTART (so a blocked syscall returns and the drain flag is observed),
// which makes spurious EINTR a normal event, not an error. The project lint
// rule `raw-syscall-retry` flags bare read()/write()/accept() calls that
// bypass this file.
#ifndef RNE_NET_FD_H_
#define RNE_NET_FD_H_

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

namespace rne::net {

/// read(2) retried on EINTR. Returns bytes read (0 = EOF) or -1 with errno
/// set (EAGAIN/EWOULDBLOCK on a drained non-blocking fd).
ssize_t ReadFd(int fd, void* buf, size_t count);

/// write(2) retried on EINTR. Returns bytes written or -1 with errno set.
/// May write fewer than `count` bytes (short write); callers loop.
ssize_t WriteFd(int fd, const void* buf, size_t count);

/// Writes the full buffer, looping over short writes and EINTR. Returns 0
/// on success, -1 with errno set on the first hard error (including
/// EAGAIN on a non-blocking fd — use buffered writes there instead).
int WriteAllFd(int fd, const void* buf, size_t count);

/// accept(2) retried on EINTR. Returns the new fd or -1 with errno set.
int AcceptFd(int fd, struct sockaddr* addr, socklen_t* addrlen);

/// Sets O_NONBLOCK. Returns 0 on success, -1 with errno set.
int SetNonBlocking(int fd);

/// close(2); EINTR is ignored per POSIX (the fd is released either way,
/// and retrying risks closing a recycled descriptor).
void CloseFd(int fd);

}  // namespace rne::net

#endif  // RNE_NET_FD_H_
