#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

#include "net/fd.h"

namespace rne::net {
namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + strerror(errno);
}

}  // namespace

BlockingClient::~BlockingClient() { Close(); }

Status BlockingClient::Connect(const std::string& host, uint16_t port,
                               std::chrono::milliseconds recv_timeout) {
  Close();
  // Writes racing a server-side close must fail with EPIPE, not a signal.
  (void)signal(SIGPIPE, SIG_IGN);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
  if (recv_timeout.count() > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout.count() % 1000) * 1000);
    (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  // The protocol is small pipelined lines; answer latency matters more
  // than segment count.
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status status = Status::IoError(ErrnoMessage("connect"));
    CloseFd(fd);
    return status;
  }
  fd_ = fd;
  buffer_.clear();
  eof_ = false;
  return Status::Ok();
}

Status BlockingClient::Send(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (WriteAllFd(fd_, data.data(), data.size()) < 0) {
    return Status::IoError(ErrnoMessage("write"));
  }
  return Status::Ok();
}

StatusOr<std::string> BlockingClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (eof_) {
      if (buffer_.empty()) return Status::NotFound("connection closed");
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    char buf[16 * 1024];
    const ssize_t n = ReadFd(fd_, buf, sizeof(buf));
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timeout waiting for a line");
    }
    return Status::IoError(ErrnoMessage("read"));
  }
}

void BlockingClient::ShutdownWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    CloseFd(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  eof_ = false;
}

}  // namespace rne::net
