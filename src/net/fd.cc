#include "net/fd.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rne::net {

ssize_t ReadFd(int fd, void* buf, size_t count) {
  ssize_t n;
  do {
    n = read(fd, buf, count);
  } while (n < 0 && errno == EINTR);
  return n;
}

ssize_t WriteFd(int fd, const void* buf, size_t count) {
  ssize_t n;
  do {
    n = write(fd, buf, count);
  } while (n < 0 && errno == EINTR);
  return n;
}

int WriteAllFd(int fd, const void* buf, size_t count) {
  const char* p = static_cast<const char*>(buf);
  size_t remaining = count;
  while (remaining > 0) {
    const ssize_t n = WriteFd(fd, p, remaining);
    if (n < 0) return -1;
    p += static_cast<size_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  return 0;
}

int AcceptFd(int fd, struct sockaddr* addr, socklen_t* addrlen) {
  int client;
  do {
    client = accept(fd, addr, addrlen);
  } while (client < 0 && errno == EINTR);
  return client;
}

int SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void CloseFd(int fd) {
  if (fd >= 0) close(fd);
}

}  // namespace rne::net
