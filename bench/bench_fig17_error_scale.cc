// Fig 17 reproduction: mean relative error (line) and mean absolute error
// (bar) per query distance scale for ACH, Distance Oracle (BJ' only), LT
// and RNE. Expected shape: ACH's absolute error grows super-linearly with
// distance; RNE's absolute error is flat so its relative error falls; DO's
// relative error is flat; LT mirrors RNE at a worse level.
#include <cstdio>
#include <memory>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/distance_oracle.h"
#include "bench/bench_common.h"
#include "util/rng.h"

namespace rne::bench {
namespace {

void Run() {
  TableWriter table({"dataset", "method", "distance_upper_bound",
                     "mean_rel_error_%", "mean_abs_error"});
  auto datasets = MakeDatasets();
  for (const Dataset& ds : datasets) {
    const size_t num_groups = ds.name == "BJ'" ? 5 : 7;
    const auto groups = DistanceScaleGroups(ds.graph, num_groups, 2000);
    double diameter = 0.0;
    for (const auto& group : groups) {
      for (const auto& s : group) diameter = std::max(diameter, s.dist);
    }
    std::printf("[fig17] dataset %s\n", ds.name.c_str());
    std::fflush(stdout);

    auto record = [&](const std::string& name, DistanceMethod& method) {
      for (size_t i = 0; i < groups.size(); ++i) {
        if (groups[i].empty()) continue;
        const ErrorStats stats = EvalError(method, groups[i]);
        const double upper =
            diameter * static_cast<double>(i + 1) / num_groups;
        table.AddRow({ds.name, name, TableWriter::Fmt(upper, 0),
                      TableWriter::Fmt(100.0 * stats.mean_rel, 3),
                      TableWriter::Fmt(stats.mean_abs, 1)});
      }
      std::printf("[fig17]   %s done\n", name.c_str());
      std::fflush(stdout);
    };

    {
      ChOptions opt;
      opt.epsilon = 0.1;
      ContractionHierarchy ach(ds.graph, opt);
      record("ACH", ach);
    }
    if (ds.name == "BJ'") {
      DistanceOracleOptions opt;
      opt.epsilon = 0.5;
      DistanceOracle oracle(ds.graph, opt);
      record("DistanceOracle", oracle);
    }
    {
      Rng rng(41);
      AltIndex lt(ds.graph, ds.lt_landmarks, rng);
      record("LT", lt);
    }
    {
      const Rne& model = CachedRne(ds);
      RneMethod rne(&model);
      record("RNE", rne);
    }
  }
  Emit(table, "Fig 17: errors by distance scale", "fig17_error_scale");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
