// Fig 14 reproduction: mean relative error vs training-set size (as a ratio
// of |V|) for RNE against DR-1K / DR-10K / DR-100K (DeepWalk + MLP
// regression) plus the raw Manhattan / Euclidean baselines. Expected shape:
// with small training sets DR is competitive (pretrained features), with
// >= 1x|V| samples RNE is clearly lowest; geo baselines are flat lines.
#include <cstdio>

#include "baselines/geo.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "nn/dr_model.h"

namespace rne::bench {
namespace {

void Run() {
  const Dataset ds = MakeBjDataset();
  const size_t n = ds.graph.NumVertices();
  const auto val = ValidationSet(ds.graph, 10000);
  TableWriter table({"model", "train_ratio_of_V", "mean_rel_error_%"});

  // Flat reference lines.
  {
    GeoEstimator euclid(ds.graph, GeoMetric::kEuclidean);
    GeoEstimator manhattan(ds.graph, GeoMetric::kManhattan);
    const double ee = 100.0 * EvalError(euclid, val).mean_rel;
    const double me = 100.0 * EvalError(manhattan, val).mean_rel;
    for (const double ratio : {0.25, 1.0, 4.0, 16.0}) {
      table.AddRow({"Euclidean", TableWriter::Fmt(ratio, 2),
                    TableWriter::Fmt(ee, 3)});
      table.AddRow({"Manhattan", TableWriter::Fmt(ratio, 2),
                    TableWriter::Fmt(me, 3)});
    }
    std::printf("[fig14] Euclidean %.2f%%, Manhattan %.2f%%\n", ee, me);
    std::fflush(stdout);
  }

  DistanceSampler sampler(ds.graph);
  for (const double ratio : {0.25, 1.0, 4.0, 16.0}) {
    const auto num_samples = static_cast<size_t>(ratio * static_cast<double>(n));
    Rng rng(55);
    const auto train = sampler.ComputeDistances(
        RandomVertexPairs(n, num_samples, rng, 8));

    // DR variants share the training set.
    for (const size_t params : {1000u, 10000u, 100000u}) {
      DrConfig cfg;
      cfg.deepwalk.dim = 64;
      cfg.deepwalk.walks_per_vertex = 4;
      cfg.deepwalk.epochs = 1;
      cfg.target_params = params;
      cfg.epochs = 12;
      DrModel dr(ds.graph, cfg);
      dr.Train(train);
      const double err = 100.0 * dr.MeanRelativeError(val);
      const std::string name = "DR-" + std::to_string(params / 1000) + "K";
      table.AddRow({name, TableWriter::Fmt(ratio, 2), TableWriter::Fmt(err, 3)});
      std::printf("[fig14] %s ratio=%.2f err=%.3f%%\n", name.c_str(), ratio,
                  err);
      std::fflush(stdout);
    }

    // RNE with a budget matched to the same sample count: feed the drawn
    // training set through the vertex phase of a hierarchical model.
    {
      HierarchyOptions hopt;
      hopt.fanout = 4;
      hopt.leaf_threshold = 64;
      const PartitionHierarchy hier = PartitionHierarchy::Build(ds.graph, hopt);
      TrainConfig cfg;
      cfg.dim = 64;
      cfg.level_samples = std::max<size_t>(2000, num_samples / 8);
      cfg.level_epochs = 4;
      cfg.vertex_samples = num_samples;
      cfg.vertex_epochs = 8;
      cfg.finetune_rounds = 0;
      Trainer trainer(ds.graph, hier, cfg);
      trainer.TrainAll();
      const double err = 100.0 * trainer.MeanRelativeError(val);
      table.AddRow(
          {"RNE", TableWriter::Fmt(ratio, 2), TableWriter::Fmt(err, 3)});
      std::printf("[fig14] RNE ratio=%.2f err=%.3f%%\n", ratio, err);
      std::fflush(stdout);
    }
  }
  Emit(table, "Fig 14: RNE vs DeepWalk-regression baselines (BJ')",
       "fig14_dr");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
