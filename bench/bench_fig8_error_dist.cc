// Fig 8 reproduction: (a) the error-vs-distance distribution of a model
// trained with random samples — sample distances concentrate in a middle
// band, so short/long distance buckets under-fit; (b) how the Local and
// Global error-based fine-tuning strategies allocate samples and flatten
// the distribution.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/spatial_grid.h"
#include "core/trainer.h"
#include "util/histogram.h"

namespace rne::bench {
namespace {

void ErrorByDistance(const Trainer& trainer,
                     const std::vector<DistanceSample>& val, double diameter,
                     const std::string& label, TableWriter* table) {
  Histogram hist(0.0, diameter * 1.001, 10);
  std::vector<float> vs(64), vt(64);
  for (const auto& s : val) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    const double est =
        trainer.model().Estimate(s.s, s.t) * trainer.scale();
    hist.Add(s.dist, std::abs(est - s.dist) / s.dist);
  }
  for (size_t b = 0; b < hist.num_buckets(); ++b) {
    table->AddRow({label, TableWriter::Fmt(hist.BucketUpper(b), 0),
                   std::to_string(hist.count(b)),
                   TableWriter::Fmt(100.0 * hist.MeanValue(b), 3)});
  }
}

void Run() {
  const Dataset ds = MakeBjDataset();
  const auto val = ValidationSet(ds.graph, 20000);
  double diameter = 0.0;
  for (const auto& s : val) diameter = std::max(diameter, s.dist);

  TableWriter table(
      {"model", "distance_upper", "num_val_pairs", "mean_rel_error_%"});

  HierarchyOptions hopt;
  hopt.fanout = 4;
  hopt.leaf_threshold = 64;
  const PartitionHierarchy hier = PartitionHierarchy::Build(ds.graph, hopt);

  auto base_config = [] {
    TrainConfig cfg;
    cfg.dim = 64;
    cfg.level_samples = 30000;
    cfg.level_epochs = 5;
    cfg.vertex_samples = 150000;
    cfg.vertex_epochs = 8;
    cfg.finetune_samples = 40000;
    return cfg;
  };

  {
    TrainConfig cfg = base_config();
    cfg.finetune_rounds = 0;
    Trainer trainer(ds.graph, hier, cfg);
    trainer.TrainAll();
    ErrorByDistance(trainer, val, diameter, "random-only", &table);
    std::printf("[fig8] random-only err=%.3f%%\n",
                100.0 * trainer.MeanRelativeError(val));
    std::fflush(stdout);
  }
  for (const FineTuneStrategy strategy :
       {FineTuneStrategy::kLocal, FineTuneStrategy::kGlobal}) {
    TrainConfig cfg = base_config();
    cfg.finetune_rounds = 3;
    cfg.finetune_strategy = strategy;
    Trainer trainer(ds.graph, hier, cfg);
    trainer.TrainAll();
    const std::string label =
        strategy == FineTuneStrategy::kLocal ? "AFT-Local" : "AFT-Global";
    ErrorByDistance(trainer, val, diameter, label, &table);
    std::printf("[fig8] %s err=%.3f%%\n", label.c_str(),
                100.0 * trainer.MeanRelativeError(val));
    std::fflush(stdout);
  }
  Emit(table, "Fig 8: error distribution by distance interval (BJ')",
       "fig8_error_dist");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
