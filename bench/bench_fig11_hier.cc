// Fig 11 reproduction: learning curves (error vs samples) for
//   RNE-Naive          flat vertex embedding
//   RNE-Hier           hierarchical embedding
//   RNE-Naive-AFT      flat + active fine-tuning
//   RNE-Hier-AFT       hierarchical + active fine-tuning
// Expected shape: Hier reaches a given error with far fewer samples than
// Naive; AFT pushes both below their plateau.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/trainer.h"

namespace rne::bench {
namespace {

void RunVariant(const Dataset& ds, const std::vector<DistanceSample>& val,
                bool hierarchical, bool aft, TableWriter* table) {
  HierarchyOptions hopt;
  hopt.fanout = 4;
  hopt.leaf_threshold = hierarchical ? 64 : ds.graph.NumVertices();
  if (!hierarchical) hopt.max_levels = 1;
  const PartitionHierarchy hier = PartitionHierarchy::Build(ds.graph, hopt);

  TrainConfig cfg;
  cfg.dim = 64;
  cfg.level_samples = 30000;
  cfg.level_epochs = 5;
  cfg.vertex_samples = 150000;
  cfg.vertex_epochs = 8;
  cfg.finetune_rounds = aft ? 3 : 0;
  cfg.finetune_samples = 40000;
  Trainer trainer(ds.graph, hier, cfg);
  trainer.SetValidation(val);
  if (hierarchical) trainer.TrainHierarchyPhase();
  trainer.TrainVertexPhase();
  trainer.FineTunePhase();

  const std::string name = std::string(hierarchical ? "RNE-Hier" : "RNE-Naive") +
                           (aft ? "-AFT" : "");
  const auto& progress = trainer.progress();
  const size_t stride = std::max<size_t>(1, progress.size() / 12);
  for (size_t i = 0; i < progress.size(); i += stride) {
    table->AddRow({name, std::to_string(progress[i].samples_processed),
                   TableWriter::Fmt(100.0 * progress[i].mean_rel_error, 3)});
  }
  table->AddRow({name, std::to_string(progress.back().samples_processed),
                 TableWriter::Fmt(100.0 * progress.back().mean_rel_error, 3)});
  std::printf("[fig11] %-14s final err=%.3f%% (%zu samples)\n", name.c_str(),
              100.0 * progress.back().mean_rel_error,
              progress.back().samples_processed);
  std::fflush(stdout);
}

void Run() {
  const Dataset ds = MakeBjDataset();
  const auto val = ValidationSet(ds.graph, 10000);
  TableWriter table({"model", "samples_processed", "mean_rel_error_%"});
  RunVariant(ds, val, /*hierarchical=*/false, /*aft=*/false, &table);
  RunVariant(ds, val, /*hierarchical=*/true, /*aft=*/false, &table);
  RunVariant(ds, val, /*hierarchical=*/false, /*aft=*/true, &table);
  RunVariant(ds, val, /*hierarchical=*/true, /*aft=*/true, &table);
  Emit(table, "Fig 11: hierarchical training and fine-tuning (BJ')",
       "fig11_hier");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
