// Fig 15 reproduction: cumulative percentage of validation queries whose
// relative error is below a threshold, for RNE, LT, ACH, Distance Oracle
// (BJ' only), Manhattan and Euclidean. Expected shape: RNE's CDF dominates
// the other approximate methods; geo baselines trail far behind.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/distance_oracle.h"
#include "baselines/geo.h"
#include "bench/bench_common.h"
#include "util/rng.h"

namespace rne::bench {
namespace {

void Run() {
  TableWriter table({"dataset", "method", "error_threshold_%", "pct_queries"});
  const std::vector<double> thresholds = {0.5, 1, 2, 3, 5, 8, 12, 20, 35, 50};

  auto datasets = MakeDatasets();
  for (const Dataset& ds : datasets) {
    std::printf("[fig15] dataset %s\n", ds.name.c_str());
    std::fflush(stdout);
    const auto val = ValidationSet(ds.graph, 20000);

    auto record = [&](const std::string& name, DistanceMethod& method) {
      std::vector<double> rel_errors;
      rel_errors.reserve(val.size());
      for (const auto& s : val) {
        if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
        rel_errors.push_back(
            100.0 * std::abs(method.Query(s.s, s.t) - s.dist) / s.dist);
      }
      std::sort(rel_errors.begin(), rel_errors.end());
      for (const double thresh : thresholds) {
        const auto below = std::upper_bound(rel_errors.begin(),
                                            rel_errors.end(), thresh) -
                           rel_errors.begin();
        table.AddRow({ds.name, name, TableWriter::Fmt(thresh, 1),
                      TableWriter::Fmt(100.0 * static_cast<double>(below) /
                                           static_cast<double>(rel_errors.size()),
                                       1)});
      }
      std::printf("[fig15]   %s done\n", name.c_str());
      std::fflush(stdout);
    };

    GeoEstimator euclid(ds.graph, GeoMetric::kEuclidean);
    record("Euclidean", euclid);
    GeoEstimator manhattan(ds.graph, GeoMetric::kManhattan);
    record("Manhattan", manhattan);
    {
      ChOptions opt;
      opt.epsilon = 0.1;
      ContractionHierarchy ach(ds.graph, opt);
      record("ACH", ach);
    }
    if (ds.name == "BJ'") {
      DistanceOracleOptions opt;
      opt.epsilon = 0.5;
      DistanceOracle oracle(ds.graph, opt);
      record("DistanceOracle", oracle);
    }
    {
      Rng rng(41);
      AltIndex lt(ds.graph, ds.lt_landmarks, rng);
      record("LT", lt);
    }
    {
      const Rne& model = CachedRne(ds);
      RneMethod rne(&model);
      record("RNE", rne);
    }
  }
  Emit(table, "Fig 15: cumulative error distribution", "fig15_cdf");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
