// Table IV reproduction: index size (MB) and index building time (s) for
// H2H, CH, Distance Oracle, ACH, LT and RNE on the three synthetic datasets.
// (The paper reports minutes; at our scaled dataset sizes seconds are the
// natural unit — the *ordering* of methods is the reproduced shape.)
//
// --threads 1,2,4,8 switches to the parallel-build sweep: every build phase
// (CH, H2H, partition, ALT, G-tree) is timed once per thread count on BJ'
// and the per-phase speedup curves land in bench_results/build_parallel.json.
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/distance_oracle.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "bench/bench_common.h"
#include "util/arg_parser.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rne::bench {
namespace {

void Run() {
  TableWriter sizes({"method", "BJ'", "FLA'", "USW'"});
  TableWriter times({"method", "BJ'", "FLA'", "USW'"});
  const std::vector<std::string> methods = {"H2H", "CH", "DistanceOracle",
                                            "ACH", "LT", "RNE"};
  std::vector<std::vector<std::string>> size_cells(
      methods.size(), std::vector<std::string>{"-", "-", "-"});
  std::vector<std::vector<std::string>> time_cells = size_cells;

  auto datasets = MakeDatasets();
  for (size_t d = 0; d < datasets.size(); ++d) {
    const Dataset& ds = datasets[d];
    std::printf("[table4] dataset %s: %zu vertices\n", ds.name.c_str(),
                ds.graph.NumVertices());
    std::fflush(stdout);

    auto record = [&](size_t row, double seconds, size_t bytes) {
      size_cells[row][d] =
          TableWriter::Fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
      time_cells[row][d] = TableWriter::Fmt(seconds, 2);
      std::printf("[table4]   %-15s size=%sMB build=%ss\n",
                  methods[row].c_str(), size_cells[row][d].c_str(),
                  time_cells[row][d].c_str());
      std::fflush(stdout);
    };

    {
      Timer t;
      H2HIndex h2h(ds.graph);
      record(0, t.ElapsedSeconds(), h2h.IndexBytes());
    }
    {
      Timer t;
      ContractionHierarchy ch(ds.graph);
      record(1, t.ElapsedSeconds(), ch.IndexBytes());
    }
    if (ds.name == "BJ'") {
      DistanceOracleOptions opt;
      opt.epsilon = 0.5;
      Timer t;
      DistanceOracle oracle(ds.graph, opt);
      record(2, t.ElapsedSeconds(), oracle.IndexBytes());
    }
    {
      ChOptions opt;
      opt.epsilon = 0.1;
      Timer t;
      ContractionHierarchy ach(ds.graph, opt);
      record(3, t.ElapsedSeconds(), ach.IndexBytes());
    }
    {
      Rng rng(41);
      Timer t;
      AltIndex lt(ds.graph, ds.lt_landmarks, rng);
      record(4, t.ElapsedSeconds(), lt.IndexBytes());
    }
    {
      // RNE build time includes sampling + training, as in the paper.
      Timer t;
      const Rne model = Rne::Build(ds.graph, DefaultRneConfig(ds.rne_dim, ds.graph.NumVertices()));
      record(5, t.ElapsedSeconds(), model.IndexBytes());
    }
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    sizes.AddRow(
        {methods[m], size_cells[m][0], size_cells[m][1], size_cells[m][2]});
    times.AddRow(
        {methods[m], time_cells[m][0], time_cells[m][1], time_cells[m][2]});
  }
  Emit(sizes, "Table IV (a): index size (MB)", "table4_index_size");
  Emit(times, "Table IV (b): index building time (s)", "table4_build_time");
}

/// One build phase of the parallel sweep: name + a builder that runs the
/// whole phase at the given thread count. Every builder is deterministic in
/// the thread count, so the sweep measures the same work at every point.
struct SweepPhase {
  std::string name;
  std::function<void(size_t threads)> build;
};

void RunThreadSweep(const std::vector<size_t>& thread_counts) {
  const Dataset ds = MakeBjDataset();
  std::printf("[build_parallel] dataset %s: %zu vertices\n", ds.name.c_str(),
              ds.graph.NumVertices());
  std::fflush(stdout);

  const std::vector<SweepPhase> phases = {
      {"ch",
       [&](size_t t) {
         ChOptions opt;
         opt.num_threads = t;
         ContractionHierarchy ch(ds.graph, opt);
       }},
      {"h2h",
       [&](size_t t) {
         H2HOptions opt;
         opt.num_threads = t;
         H2HIndex h2h(ds.graph, opt);
       }},
      {"partition",
       [&](size_t t) {
         HierarchyOptions opt;
         opt.partition.num_threads = t;
         PartitionHierarchy::Build(ds.graph, opt);
       }},
      {"alt",
       [&](size_t t) {
         Rng rng(41);
         AltIndex lt(ds.graph, ds.lt_landmarks, rng, t);
       }},
      {"gtree",
       [&](size_t t) {
         GTreeOptions opt;
         opt.num_threads = t;
         GTree gtree(ds.graph, opt);
       }},
  };

  // seconds[p][i]: phase p built with thread_counts[i] workers.
  std::vector<std::vector<double>> seconds(
      phases.size(), std::vector<double>(thread_counts.size(), 0.0));
  for (size_t p = 0; p < phases.size(); ++p) {
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      Timer timer;
      phases[p].build(thread_counts[i]);
      seconds[p][i] = timer.ElapsedSeconds();
      std::printf("[build_parallel]   %-10s threads=%zu %.3fs\n",
                  phases[p].name.c_str(), thread_counts[i], seconds[p][i]);
      std::fflush(stdout);
    }
  }

  std::vector<std::string> header = {"phase"};
  for (const size_t t : thread_counts) {
    header.push_back("t=" + std::to_string(t) + " (s)");
  }
  for (const size_t t : thread_counts) {
    header.push_back("t=" + std::to_string(t) + " (x)");
  }
  TableWriter table(header);
  // Speedups are against the sweep's first point (conventionally t=1).
  std::ostringstream json;
  json << "{\n  \"dataset\": \"" << ds.name << "\",\n  \"vertices\": "
       << ds.graph.NumVertices() << ",\n  \"threads\": [";
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    json << (i == 0 ? "" : ", ") << thread_counts[i];
  }
  json << "],\n  \"phases\": [\n";
  for (size_t p = 0; p < phases.size(); ++p) {
    std::vector<std::string> row = {phases[p].name};
    json << "    {\"name\": \"" << phases[p].name << "\", \"seconds\": [";
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      row.push_back(TableWriter::Fmt(seconds[p][i], 3));
      json << (i == 0 ? "" : ", ") << TableWriter::Fmt(seconds[p][i], 6);
    }
    json << "], \"speedup\": [";
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      const double speedup =
          seconds[p][i] > 0.0 ? seconds[p][0] / seconds[p][i] : 1.0;
      row.push_back(TableWriter::Fmt(speedup, 2));
      json << (i == 0 ? "" : ", ") << TableWriter::Fmt(speedup, 3);
    }
    json << "]}" << (p + 1 == phases.size() ? "" : ",") << "\n";
    table.AddRow(row);
  }
  json << "  ]\n}\n";

  Emit(table, "Parallel index build sweep (BJ')", "build_parallel");
  const std::string path = ResultsDir() + "/build_parallel.json";
  std::ofstream out(path, std::ios::trunc);
  out << json.str();
  if (out) {
    std::printf("[build_parallel] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[build_parallel] cannot write %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace rne::bench

int main(int argc, char** argv) {
  auto args = rne::ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 1;
  }
  const std::string threads = args.value().Get("threads", "");
  if (threads.empty()) {
    rne::bench::Run();
    return 0;
  }
  // "--threads 1,2,4" selects the sweep; each element is a worker count.
  std::vector<size_t> counts;
  std::stringstream list(threads);
  std::string token;
  while (std::getline(list, token, ',')) {
    const long value = std::atol(token.c_str());
    if (value <= 0) {
      std::fprintf(stderr, "error: bad --threads element '%s'\n",
                   token.c_str());
      return 1;
    }
    counts.push_back(static_cast<size_t>(value));
  }
  rne::bench::RunThreadSweep(counts);
  return 0;
}
