// Table IV reproduction: index size (MB) and index building time (s) for
// H2H, CH, Distance Oracle, ACH, LT and RNE on the three synthetic datasets.
// (The paper reports minutes; at our scaled dataset sizes seconds are the
// natural unit — the *ordering* of methods is the reproduced shape.)
#include <cstdio>
#include <memory>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/distance_oracle.h"
#include "baselines/h2h.h"
#include "bench/bench_common.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rne::bench {
namespace {

void Run() {
  TableWriter sizes({"method", "BJ'", "FLA'", "USW'"});
  TableWriter times({"method", "BJ'", "FLA'", "USW'"});
  const std::vector<std::string> methods = {"H2H", "CH", "DistanceOracle",
                                            "ACH", "LT", "RNE"};
  std::vector<std::vector<std::string>> size_cells(
      methods.size(), std::vector<std::string>{"-", "-", "-"});
  std::vector<std::vector<std::string>> time_cells = size_cells;

  auto datasets = MakeDatasets();
  for (size_t d = 0; d < datasets.size(); ++d) {
    const Dataset& ds = datasets[d];
    std::printf("[table4] dataset %s: %zu vertices\n", ds.name.c_str(),
                ds.graph.NumVertices());
    std::fflush(stdout);

    auto record = [&](size_t row, double seconds, size_t bytes) {
      size_cells[row][d] =
          TableWriter::Fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
      time_cells[row][d] = TableWriter::Fmt(seconds, 2);
      std::printf("[table4]   %-15s size=%sMB build=%ss\n",
                  methods[row].c_str(), size_cells[row][d].c_str(),
                  time_cells[row][d].c_str());
      std::fflush(stdout);
    };

    {
      Timer t;
      H2HIndex h2h(ds.graph);
      record(0, t.ElapsedSeconds(), h2h.IndexBytes());
    }
    {
      Timer t;
      ContractionHierarchy ch(ds.graph);
      record(1, t.ElapsedSeconds(), ch.IndexBytes());
    }
    if (ds.name == "BJ'") {
      DistanceOracleOptions opt;
      opt.epsilon = 0.5;
      Timer t;
      DistanceOracle oracle(ds.graph, opt);
      record(2, t.ElapsedSeconds(), oracle.IndexBytes());
    }
    {
      ChOptions opt;
      opt.epsilon = 0.1;
      Timer t;
      ContractionHierarchy ach(ds.graph, opt);
      record(3, t.ElapsedSeconds(), ach.IndexBytes());
    }
    {
      Rng rng(41);
      Timer t;
      AltIndex lt(ds.graph, ds.lt_landmarks, rng);
      record(4, t.ElapsedSeconds(), lt.IndexBytes());
    }
    {
      // RNE build time includes sampling + training, as in the paper.
      Timer t;
      const Rne model = Rne::Build(ds.graph, DefaultRneConfig(ds.rne_dim, ds.graph.NumVertices()));
      record(5, t.ElapsedSeconds(), model.IndexBytes());
    }
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    sizes.AddRow(
        {methods[m], size_cells[m][0], size_cells[m][1], size_cells[m][2]});
    times.AddRow(
        {methods[m], time_cells[m][0], time_cells[m][1], time_cells[m][2]});
  }
  Emit(sizes, "Table IV (a): index size (MB)", "table4_index_size");
  Emit(times, "Table IV (b): index building time (s)", "table4_build_time");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
