// Microbenchmarks (google-benchmark): the L1 query kernel vs the generic Lp
// path, SIMD vs scalar kernel backends, point-to-point search costs
// (Dijkstra / bidirectional / A*), training throughput at several thread
// counts, and the end-to-end RNE query. These are the "60-150 ns" headline
// numbers of the paper's abstract.
//
// Unless --benchmark_out is given, results are written to
// bench_results/perf_kernels.json (machine-readable; the JSON context block
// records the dispatched kernel backend).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "algo/astar.h"
#include "algo/bidirectional_dijkstra.h"
#include "algo/dijkstra.h"
#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "core/kernels.h"
#include "core/metric.h"
#include "core/quantized.h"
#include "core/rne.h"
#include "core/trainer.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "util/rng.h"

namespace rne {
namespace {

const Graph& BenchGraph() {
  static const Graph* g = [] {
    RoadNetworkConfig cfg;
    cfg.rows = 48;
    cfg.cols = 48;
    cfg.seed = 3;
    return new Graph(MakeRoadNetwork(cfg));
  }();
  return *g;
}

std::vector<float> RandomVec(size_t dim, Rng& rng) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.UniformReal(-1, 1));
  return v;
}

void BM_L1Kernel(benchmark::State& state) {
  Rng rng(1);
  const auto a = RandomVec(static_cast<size_t>(state.range(0)), rng);
  const auto b = RandomVec(static_cast<size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L1Dist(a, b));
  }
}
BENCHMARK(BM_L1Kernel)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Scalar reference for the same sizes: the BM_L1Kernel/N vs
// BM_L1KernelScalar/N ratio is the SIMD speedup on this machine.
void BM_L1KernelScalar(benchmark::State& state) {
  Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, rng);
  const auto b = RandomVec(dim, rng);
  const KernelOps& ops = ScalarKernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.l1(a.data(), b.data(), dim));
  }
}
BENCHMARK(BM_L1KernelScalar)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Fused distance + sign gradient (one pass, used by the p=1 SGD loop).
void BM_L1SignGradFused(benchmark::State& state) {
  Rng rng(14);
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, rng);
  const auto b = RandomVec(dim, rng);
  std::vector<float> grad(dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L1DistWithSignGrad(a, b, grad));
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_L1SignGradFused)->Arg(64)->Arg(128);

// The pre-kernel path: separate distance pass + gradient pass (double
// staging, as MetricDist + MetricGradient).
void BM_L1SignGradSeparate(benchmark::State& state) {
  Rng rng(14);
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(dim, rng);
  const auto b = RandomVec(dim, rng);
  std::vector<double> grad(dim);
  for (auto _ : state) {
    const double dist = MetricDist(a, b, 1.0);
    MetricGradient(a, b, 1.0, dist, grad);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_L1SignGradSeparate)->Arg(64)->Arg(128);

// Fused row update (the SGD inner write): row += alpha * grad.
void BM_AxpyKernel(benchmark::State& state) {
  Rng rng(15);
  const size_t dim = static_cast<size_t>(state.range(0));
  auto row = RandomVec(dim, rng);
  const auto grad = RandomVec(dim, rng);
  for (auto _ : state) {
    AxpyKernel(std::span<float>(row), grad, 1e-6f);
    benchmark::DoNotOptimize(row.data());
  }
}
BENCHMARK(BM_AxpyKernel)->Arg(64)->Arg(128);

std::vector<uint8_t> RandomBytes(size_t dim, Rng& rng) {
  std::vector<uint8_t> v(dim);
  for (uint8_t& x : v) x = static_cast<uint8_t>(rng.UniformIndex(256));
  return v;
}

// uint8 SAD-style quantized distance kernel, dispatched vs scalar.
void BM_QuantizedKernel(benchmark::State& state) {
  Rng rng(16);
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomBytes(dim, rng);
  const auto b = RandomBytes(dim, rng);
  auto steps = RandomVec(dim, rng);
  for (float& s : steps) s = std::abs(s) + 1e-3f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        QuantizedL1Kernel(a.data(), b.data(), steps.data(), dim));
  }
}
BENCHMARK(BM_QuantizedKernel)->Arg(64)->Arg(128);

void BM_QuantizedKernelScalar(benchmark::State& state) {
  Rng rng(16);
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto a = RandomBytes(dim, rng);
  const auto b = RandomBytes(dim, rng);
  auto steps = RandomVec(dim, rng);
  for (float& s : steps) s = std::abs(s) + 1e-3f;
  const KernelOps& ops = ScalarKernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.qdist(a.data(), b.data(), steps.data(), dim));
  }
}
BENCHMARK(BM_QuantizedKernelScalar)->Arg(64)->Arg(128);

void BM_GenericLpKernel(benchmark::State& state) {
  Rng rng(2);
  const auto a = RandomVec(64, rng);
  const auto b = RandomVec(64, rng);
  const double p = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LpDist(a, b, p));
  }
}
BENCHMARK(BM_GenericLpKernel)->Arg(1)->Arg(2)->Arg(3);

void BM_DijkstraQuery(benchmark::State& state) {
  const Graph& g = BenchGraph();
  DijkstraSearch search(g);
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    benchmark::DoNotOptimize(search.Distance(s, t));
  }
}
BENCHMARK(BM_DijkstraQuery);

void BM_BidirectionalQuery(benchmark::State& state) {
  const Graph& g = BenchGraph();
  BidirectionalDijkstra search(g);
  Rng rng(4);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    benchmark::DoNotOptimize(search.Distance(s, t));
  }
}
BENCHMARK(BM_BidirectionalQuery);

void BM_AStarGeoQuery(benchmark::State& state) {
  const Graph& g = BenchGraph();
  AStarSearch search(g);
  Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    benchmark::DoNotOptimize(search.DistanceGeo(s, t));
  }
}
BENCHMARK(BM_AStarGeoQuery);

const Rne& BenchModel() {
  static const Rne* model = [] {
    RneConfig config;
    config.dim = 64;
    config.train.level_samples = 5000;
    config.train.vertex_samples = 20000;
    config.train.finetune_rounds = 0;
    return new Rne(Rne::Build(BenchGraph(), config));
  }();
  return *model;
}

void BM_RneQuery(benchmark::State& state) {
  const Rne& model = BenchModel();
  Rng rng(6);
  const size_t n = model.NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(model.Query(s, t));
  }
}
BENCHMARK(BM_RneQuery);

// The paper's dispatch workload: one source against a candidate batch.
// Reported time is per batch; divide by the batch size for per-distance
// cost (streaming the matrix beats pointer-chasing per Query call).
void BM_RneOneToMany(benchmark::State& state) {
  const Rne& model = BenchModel();
  const auto batch = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<VertexId> targets(batch);
  for (auto& t : targets) {
    t = static_cast<VertexId>(rng.UniformIndex(model.NumVertices()));
  }
  std::vector<double> out(batch);
  for (auto _ : state) {
    model.QueryOneToMany(0, targets, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_RneOneToMany)->Arg(100)->Arg(1000);

// 8-bit quantized serving (1/4 index size): byte-row L1 walk.
void BM_QuantizedRneQuery(benchmark::State& state) {
  static const QuantizedRne* quantized =
      new QuantizedRne(BenchModel());
  Rng rng(13);
  const size_t n = quantized->NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(quantized->Query(s, t));
  }
}
BENCHMARK(BM_QuantizedRneQuery);

void BM_H2hQuery(benchmark::State& state) {
  static const H2HIndex* index = new H2HIndex(BenchGraph());
  Rng rng(8);
  const size_t n = BenchGraph().NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(
        const_cast<H2HIndex*>(index)->Query(s, t));
  }
}
BENCHMARK(BM_H2hQuery);

void BM_ChQuery(benchmark::State& state) {
  static ContractionHierarchy* index =
      new ContractionHierarchy(BenchGraph());
  Rng rng(9);
  const size_t n = BenchGraph().NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(index->Query(s, t));
  }
}
BENCHMARK(BM_ChQuery);

void BM_GTreeQuery(benchmark::State& state) {
  static GTree* index = new GTree(BenchGraph());
  Rng rng(10);
  const size_t n = BenchGraph().NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(index->Distance(s, t));
  }
}
BENCHMARK(BM_GTreeQuery);

void BM_LtQuery(benchmark::State& state) {
  static AltIndex* index = [] {
    Rng rng(11);
    return new AltIndex(BenchGraph(), 64, rng);
  }();
  Rng rng(12);
  const size_t n = BenchGraph().NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(index->Query(s, t));
  }
}
BENCHMARK(BM_LtQuery);

// Observability overhead A/B on the kernel path: BM_L1Kernel's production
// code with obs disabled (Arg 0) vs enabled (Arg 1). The distance kernels
// are deliberately NOT instrumented per call (see BM_ObsCounterCost for
// why), so the /0 vs /1 delta must be measurement noise — this leg guards
// against instrumentation creeping into the kernel hot loop. Budget: <=2%.
void BM_L1KernelObs(benchmark::State& state) {
  Rng rng(1);
  const auto a = RandomVec(64, rng);
  const auto b = RandomVec(64, rng);
  obs::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L1Dist(a, b));
  }
  obs::SetEnabled(true);
}
BENCHMARK(BM_L1KernelObs)->Arg(0)->Arg(1);

// Raw cost of one registry-counter macro next to a ~20 ns kernel call:
// Arg(0) with obs::SetEnabled(false) (one relaxed load, branch not taken),
// Arg(1) with the relaxed fetch_add live. This is informational — it
// documents WHY hot loops accumulate locally and flush per chunk/epoch
// instead of bumping a shared atomic per sample (the per-call atomic would
// nearly double a 20 ns kernel).
void BM_ObsCounterCost(benchmark::State& state) {
  Rng rng(1);
  const auto a = RandomVec(64, rng);
  const auto b = RandomVec(64, rng);
  obs::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L1Dist(a, b));
    RNE_COUNTER_ADD("bench.l1_calls", 1);
  }
  obs::SetEnabled(true);
}
BENCHMARK(BM_ObsCounterCost)->Arg(0)->Arg(1);

// Serve-path A/B: batched QueryEngine requests against the resident model
// backend with observability off (0) vs on (1). Per-item time is the serve
// latency including admission, chunk fan-out, the sampled per-backend
// histogram, and per-chunk counter flushes — the serve-p50 side of the
// <=2% overhead budget.
void BM_ServeQueryObs(benchmark::State& state) {
  static serve::QueryEngine* engine = [] {
    serve::EngineOptions options;
    options.num_threads = 2;
    auto* e = new serve::QueryEngine(options);
    e->AddReadyBackend(serve::MakeSharedModelBackend(BenchModel()));
    // Discard OK: AddReadyBackend never enters the loading state, so
    // there is no load error to propagate.
    (void)e->WaitUntilLoaded();
    return e;
  }();
  Rng rng(23);
  const size_t n = BenchModel().NumVertices();
  // Large enough (32 chunks) that per-query and per-chunk instrumentation
  // costs dominate the fixed pool-wakeup latency, which on shared machines
  // is noisier than the 2% budget being measured.
  std::vector<serve::Request> requests(1024);
  for (auto& r : requests) {
    r.kind = serve::RequestKind::kDistance;
    r.s = static_cast<VertexId>(rng.UniformIndex(n));
    r.t = static_cast<VertexId>(rng.UniformIndex(n));
  }
  std::vector<serve::Response> responses;
  obs::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->QueryBatch(requests, &responses).ok());
    benchmark::DoNotOptimize(responses.data());
  }
  obs::SetEnabled(true);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(requests.size()));
}
BENCHMARK(BM_ServeQueryObs)->Arg(0)->Arg(1)->UseRealTime();

// SGD training throughput on a 64x64 road network at several thread counts
// (items/s = samples/s). Samples are materialized once; each iteration
// re-trains a fresh model on them, so the measured region is pure SGD.
void BM_TrainThroughput(benchmark::State& state) {
  static const Graph* g = [] {
    RoadNetworkConfig cfg;
    cfg.rows = 64;
    cfg.cols = 64;
    cfg.seed = 17;
    return new Graph(MakeRoadNetwork(cfg));
  }();
  static const PartitionHierarchy* hier = new PartitionHierarchy(
      PartitionHierarchy::Build(*g, HierarchyOptions{}));
  static const std::vector<DistanceSample>* samples = [] {
    TrainConfig cfg;
    Trainer t(*g, *hier, cfg);
    Rng rng(21);
    return new std::vector<DistanceSample>(
        t.Materialize(RandomVertexPairs(g->NumVertices(), 20000, rng, 8)));
  }();

  const size_t epochs = 2;
  size_t samples_done = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TrainConfig cfg;
    cfg.num_threads = static_cast<size_t>(state.range(0));
    Trainer trainer(*g, *hier, cfg);
    std::vector<double> lrs(trainer.model().num_levels() + 1, 0.0);
    lrs[trainer.model().vertex_level()] = cfg.lr0;
    state.ResumeTiming();
    trainer.TrainOnSamples(*samples, lrs, epochs);
    samples_done += trainer.total_samples_processed();
  }
  state.SetItemsProcessed(static_cast<int64_t>(samples_done));
}
BENCHMARK(BM_TrainThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace rne

// Custom main: defaults --benchmark_out to bench_results/perf_kernels.json
// and records the dispatched kernel backend in the JSON context block.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=bench_results/perf_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    if (!ec) {
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    }
  }
  benchmark::AddCustomContext("kernel_backend", rne::KernelBackendName());
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Metrics sidecar: the registry state accumulated across the run
  // (training/build counters from BenchModel, serve histograms from the A/B
  // leg) next to the google-benchmark report.
  {
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    if (!ec) {
      FILE* f = std::fopen("bench_results/perf_kernels_metrics.json", "w");
      if (f != nullptr) {
        const std::string json = rne::obs::MetricsRegistry::Global().ToJson();
        std::fputs(json.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
      }
    }
  }
  return 0;
}
