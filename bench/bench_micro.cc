// Microbenchmarks (google-benchmark): the L1 query kernel vs the generic Lp
// path, point-to-point search costs (Dijkstra / bidirectional / A*), and the
// end-to-end RNE query for several dimensions. These are the "60-150 ns"
// headline numbers of the paper's abstract.
#include <benchmark/benchmark.h>

#include "algo/astar.h"
#include "algo/bidirectional_dijkstra.h"
#include "algo/dijkstra.h"
#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/gtree.h"
#include "baselines/h2h.h"
#include "core/metric.h"
#include "core/quantized.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace rne {
namespace {

const Graph& BenchGraph() {
  static const Graph* g = [] {
    RoadNetworkConfig cfg;
    cfg.rows = 48;
    cfg.cols = 48;
    cfg.seed = 3;
    return new Graph(MakeRoadNetwork(cfg));
  }();
  return *g;
}

std::vector<float> RandomVec(size_t dim, Rng& rng) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.UniformReal(-1, 1));
  return v;
}

void BM_L1Kernel(benchmark::State& state) {
  Rng rng(1);
  const auto a = RandomVec(static_cast<size_t>(state.range(0)), rng);
  const auto b = RandomVec(static_cast<size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L1Dist(a, b));
  }
}
BENCHMARK(BM_L1Kernel)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GenericLpKernel(benchmark::State& state) {
  Rng rng(2);
  const auto a = RandomVec(64, rng);
  const auto b = RandomVec(64, rng);
  const double p = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LpDist(a, b, p));
  }
}
BENCHMARK(BM_GenericLpKernel)->Arg(1)->Arg(2)->Arg(3);

void BM_DijkstraQuery(benchmark::State& state) {
  const Graph& g = BenchGraph();
  DijkstraSearch search(g);
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    benchmark::DoNotOptimize(search.Distance(s, t));
  }
}
BENCHMARK(BM_DijkstraQuery);

void BM_BidirectionalQuery(benchmark::State& state) {
  const Graph& g = BenchGraph();
  BidirectionalDijkstra search(g);
  Rng rng(4);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    benchmark::DoNotOptimize(search.Distance(s, t));
  }
}
BENCHMARK(BM_BidirectionalQuery);

void BM_AStarGeoQuery(benchmark::State& state) {
  const Graph& g = BenchGraph();
  AStarSearch search(g);
  Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    benchmark::DoNotOptimize(search.DistanceGeo(s, t));
  }
}
BENCHMARK(BM_AStarGeoQuery);

const Rne& BenchModel() {
  static const Rne* model = [] {
    RneConfig config;
    config.dim = 64;
    config.train.level_samples = 5000;
    config.train.vertex_samples = 20000;
    config.train.finetune_rounds = 0;
    return new Rne(Rne::Build(BenchGraph(), config));
  }();
  return *model;
}

void BM_RneQuery(benchmark::State& state) {
  const Rne& model = BenchModel();
  Rng rng(6);
  const size_t n = model.NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(model.Query(s, t));
  }
}
BENCHMARK(BM_RneQuery);

// The paper's dispatch workload: one source against a candidate batch.
// Reported time is per batch; divide by the batch size for per-distance
// cost (streaming the matrix beats pointer-chasing per Query call).
void BM_RneOneToMany(benchmark::State& state) {
  const Rne& model = BenchModel();
  const auto batch = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<VertexId> targets(batch);
  for (auto& t : targets) {
    t = static_cast<VertexId>(rng.UniformIndex(model.NumVertices()));
  }
  std::vector<double> out(batch);
  for (auto _ : state) {
    model.QueryOneToMany(0, targets, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_RneOneToMany)->Arg(100)->Arg(1000);

// 8-bit quantized serving (1/4 index size): byte-row L1 walk.
void BM_QuantizedRneQuery(benchmark::State& state) {
  static const QuantizedRne* quantized =
      new QuantizedRne(BenchModel());
  Rng rng(13);
  const size_t n = quantized->NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(quantized->Query(s, t));
  }
}
BENCHMARK(BM_QuantizedRneQuery);

void BM_H2hQuery(benchmark::State& state) {
  static const H2HIndex* index = new H2HIndex(BenchGraph());
  Rng rng(8);
  const size_t n = BenchGraph().NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(
        const_cast<H2HIndex*>(index)->Query(s, t));
  }
}
BENCHMARK(BM_H2hQuery);

void BM_ChQuery(benchmark::State& state) {
  static ContractionHierarchy* index =
      new ContractionHierarchy(BenchGraph());
  Rng rng(9);
  const size_t n = BenchGraph().NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(index->Query(s, t));
  }
}
BENCHMARK(BM_ChQuery);

void BM_GTreeQuery(benchmark::State& state) {
  static GTree* index = new GTree(BenchGraph());
  Rng rng(10);
  const size_t n = BenchGraph().NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(index->Distance(s, t));
  }
}
BENCHMARK(BM_GTreeQuery);

void BM_LtQuery(benchmark::State& state) {
  static AltIndex* index = [] {
    Rng rng(11);
    return new AltIndex(BenchGraph(), 64, rng);
  }();
  Rng rng(12);
  const size_t n = BenchGraph().NumVertices();
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(index->Query(s, t));
  }
}
BENCHMARK(BM_LtQuery);

}  // namespace
}  // namespace rne

BENCHMARK_MAIN();
