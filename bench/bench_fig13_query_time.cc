// Fig 13 reproduction: average query time vs query distance scale for CH,
// ACH, H2H, Distance Oracle (BJ' only), LT and RNE. Expected shape: CH/ACH
// grow with distance (larger search space), H2H near-flat, LT/RNE flat,
// DO flat-to-decreasing.
#include <cstdio>
#include <memory>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/distance_oracle.h"
#include "baselines/h2h.h"
#include "bench/bench_common.h"
#include "util/rng.h"

namespace rne::bench {
namespace {

void Run() {
  TableWriter table(
      {"dataset", "method", "distance_upper_bound", "query_time_us"});
  auto datasets = MakeDatasets();
  for (const Dataset& ds : datasets) {
    const size_t num_groups = ds.name == "BJ'" ? 5 : 7;
    const auto groups = DistanceScaleGroups(ds.graph, num_groups, 2000);
    std::printf("[fig13] dataset %s (%zu groups)\n", ds.name.c_str(),
                num_groups);
    std::fflush(stdout);

    std::vector<std::pair<std::string, std::unique_ptr<DistanceMethod>>>
        methods;
    methods.emplace_back("CH",
                         std::make_unique<ContractionHierarchy>(ds.graph));
    {
      ChOptions opt;
      opt.epsilon = 0.1;
      methods.emplace_back(
          "ACH", std::make_unique<ContractionHierarchy>(ds.graph, opt));
    }
    methods.emplace_back("H2H", std::make_unique<H2HIndex>(ds.graph));
    if (ds.name == "BJ'") {
      DistanceOracleOptions opt;
      opt.epsilon = 0.5;
      methods.emplace_back("DistanceOracle",
                           std::make_unique<DistanceOracle>(ds.graph, opt));
    }
    {
      Rng rng(41);
      methods.emplace_back(
          "LT", std::make_unique<AltIndex>(ds.graph, ds.lt_landmarks, rng));
    }
    const Rne& model = CachedRne(ds);
    methods.emplace_back("RNE", std::make_unique<RneMethod>(&model));

    // Distance upper bound of group i (for the x axis).
    double diameter = 0.0;
    for (const auto& group : groups) {
      for (const auto& s : group) diameter = std::max(diameter, s.dist);
    }
    for (const auto& [name, method] : methods) {
      for (size_t i = 0; i < groups.size(); ++i) {
        if (groups[i].empty()) continue;
        const double upper =
            diameter * static_cast<double>(i + 1) / num_groups;
        const double nanos = MeasureQueryNanos(*method, groups[i]);
        table.AddRow({ds.name, name, TableWriter::Fmt(upper, 0),
                      TableWriter::Fmt(nanos / 1000.0, 3)});
      }
      std::printf("[fig13]   %s done\n", name.c_str());
      std::fflush(stdout);
    }
  }
  Emit(table, "Fig 13: query time vs distance scale", "fig13_query_time");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
