// Fig 10 reproduction: mean relative error vs number of training samples for
// embedding dimensions d in {32, 64, 128, 256}. Expected shape: every curve
// decreases with more samples with diminishing returns; larger d needs more
// samples but can reach lower error.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/trainer.h"

namespace rne::bench {
namespace {

void Run() {
  const Dataset ds = MakeBjDataset();
  const auto val = ValidationSet(ds.graph, 10000);

  HierarchyOptions hopt;
  hopt.fanout = 4;
  hopt.leaf_threshold = 64;
  const PartitionHierarchy hier = PartitionHierarchy::Build(ds.graph, hopt);

  TableWriter table({"dim", "samples_processed", "mean_rel_error_%"});
  for (const size_t dim : {32u, 64u, 128u, 256u}) {
    TrainConfig cfg;
    cfg.dim = dim;
    cfg.level_samples = 30000;
    cfg.level_epochs = 5;
    cfg.vertex_samples = 150000;
    cfg.vertex_epochs = 8;
    cfg.finetune_rounds = 2;
    cfg.finetune_samples = 40000;
    Trainer trainer(ds.graph, hier, cfg);
    trainer.SetValidation(val);
    trainer.TrainAll();
    // Report the learning curve (samples -> error), thinned to ~10 points.
    const auto& progress = trainer.progress();
    const size_t stride = std::max<size_t>(1, progress.size() / 10);
    for (size_t i = 0; i < progress.size(); i += stride) {
      table.AddRow({std::to_string(dim),
                    std::to_string(progress[i].samples_processed),
                    TableWriter::Fmt(100.0 * progress[i].mean_rel_error, 3)});
    }
    table.AddRow({std::to_string(dim),
                  std::to_string(progress.back().samples_processed),
                  TableWriter::Fmt(100.0 * progress.back().mean_rel_error, 3)});
    std::printf("[fig10] d=%zu final err=%.3f%%\n", dim,
                100.0 * progress.back().mean_rel_error);
    std::fflush(stdout);
  }
  Emit(table, "Fig 10: error vs training samples for each d (BJ')",
       "fig10_dim");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
