// Ablation: how the partition-tree shape (fanout kappa, leaf threshold
// delta) affects RNE accuracy and training cost — the design choices
// DESIGN.md calls out for Sec IV-A. Also reports the Sec IV-A norm-sharing
// diagnostic: the hierarchical model's total parameter L1 norm is much
// smaller than the flat model's.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/trainer.h"
#include "util/timer.h"

namespace rne::bench {
namespace {

void Run() {
  const Dataset ds = MakeBjDataset();
  const auto val = ValidationSet(ds.graph, 10000);
  TableWriter table({"fanout", "leaf_threshold", "tree_nodes", "levels",
                     "train_s", "mean_rel_error_%", "sum_local_norms"});

  struct Shape {
    size_t fanout;
    size_t leaf;
  };
  const std::vector<Shape> shapes = {
      {2, 64}, {4, 32}, {4, 64}, {4, 128}, {8, 64},
      {4, ds.graph.NumVertices()},  // flat model for the norm comparison
  };
  for (const Shape& shape : shapes) {
    HierarchyOptions hopt;
    hopt.fanout = shape.fanout;
    hopt.leaf_threshold = shape.leaf;
    const PartitionHierarchy hier = PartitionHierarchy::Build(ds.graph, hopt);
    TrainConfig cfg;
    cfg.dim = 64;
    cfg.level_samples = 30000;
    cfg.level_epochs = 5;
    cfg.vertex_samples = 150000;
    cfg.vertex_epochs = 8;
    cfg.finetune_rounds = 0;
    Timer timer;
    Trainer trainer(ds.graph, hier, cfg);
    trainer.TrainAll();
    const double seconds = timer.ElapsedSeconds();
    const double err = 100.0 * trainer.MeanRelativeError(val);
    table.AddRow({std::to_string(shape.fanout), std::to_string(shape.leaf),
                  std::to_string(hier.num_nodes()),
                  std::to_string(hier.max_level() + 1),
                  TableWriter::Fmt(seconds, 1), TableWriter::Fmt(err, 3),
                  TableWriter::Fmt(trainer.model().SumLocalNorms(), 0)});
    std::printf("[ablation] kappa=%zu delta=%zu err=%.3f%% (%.1fs)\n",
                shape.fanout, shape.leaf, err, seconds);
    std::fflush(stdout);
  }
  Emit(table, "Ablation: partition-tree shape (BJ')", "ablation_partition");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
