// Load generator for the serving subsystem: measures sustained QPS and
// latency percentiles of the batched QueryEngine on a generated grid, in
// two modes, and compares against the pre-engine baseline (a sequential
// `rne_tool query`-style loop that reloads the model for every query).
//
//  * closed loop — T client threads issue batches of B back-to-back; the
//    measured rate is the system's capacity at that concurrency;
//  * open loop  — clients fire batches on a fixed schedule at an offered
//    rate regardless of completions, so queue wait (and admission
//    rejection) shows up in the latency tail, not in the arrival process.
//
// Sweeps thread counts x batch sizes, writes bench_results/serve_report.json.
//
// A final brownout leg injects a 100% error rate into the learned primary,
// reports the throughput dip while the exact fallback carries traffic, and
// measures the time from clearing the fault to regaining 90% of healthy
// throughput with the breaker re-closed.
//
//   bench_serve [--rows 64] [--cols 64] [--dim 32] [--seconds 1.0]
//               [--threads 1,2,4] [--batches 1,16,64,256]
//               [--queue 8192] [--baseline-queries 20] [--out <path>]
//               [--brownout-seconds 1.5]   (0 skips the brownout leg)
//
// Smoke run (CI): bench_serve --seconds 0.2 --threads 2 --batches 64
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/dijkstra.h"
#include "bench/bench_common.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "util/arg_parser.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rne::bench {
namespace {

struct SweepPoint {
  std::string mode;  // "closed" | "open"
  size_t threads = 0;
  size_t batch = 0;
  double offered_qps = 0.0;  // open loop only
  double achieved_qps = 0.0;
  serve::MetricsSnapshot metrics;
};

std::vector<size_t> ParseSizeList(const std::string& csv) {
  std::vector<size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::strtol(item.c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<size_t>(v));
  }
  return out;
}

std::vector<serve::Request> RandomRequests(const Graph& g, size_t n,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::Request> out(n);
  for (auto& r : out) {
    r.kind = serve::RequestKind::kDistance;
    r.s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    r.t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
  }
  return out;
}

/// Fresh engine per sweep point so its metrics cover exactly that point:
/// learned primary (already resident, Ready immediately) with an exact
/// Dijkstra fallback, mirroring the rne_server default chain.
std::unique_ptr<serve::QueryEngine> MakeEngine(const Rne& model,
                                               const Graph& g,
                                               size_t num_threads,
                                               size_t queue_capacity) {
  serve::EngineOptions options;
  options.num_threads = num_threads;
  options.queue_capacity = queue_capacity;
  auto engine = std::make_unique<serve::QueryEngine>(options);
  engine->AddReadyBackend(serve::MakeSharedModelBackend(model));
  serve::BackendContext ctx;
  ctx.graph = &g;
  engine->AddBackend("dijkstra", ctx);
  // Discard OK: dijkstra is graph-built and cannot fail to load; the
  // benchmark would only measure an empty chain otherwise.
  (void)engine->WaitUntilLoaded();
  return engine;
}

SweepPoint RunClosedLoop(const Rne& model, const Graph& g, size_t threads,
                         size_t batch, size_t queue_capacity,
                         double seconds) {
  auto engine_ptr = MakeEngine(model, g, threads, queue_capacity);
  serve::QueryEngine& engine = *engine_ptr;
  std::atomic<uint64_t> served{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const auto requests = RandomRequests(g, batch, 1000 + c);
      std::vector<serve::Response> responses;
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.QueryBatch(requests, &responses).ok()) {
          served.fetch_add(requests.size(), std::memory_order_relaxed);
        }
      }
    });
  }
  Timer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& t : clients) t.join();
  const double elapsed = timer.ElapsedSeconds();

  SweepPoint point;
  point.mode = "closed";
  point.threads = threads;
  point.batch = batch;
  point.achieved_qps = static_cast<double>(served.load()) / elapsed;
  point.metrics = engine.Metrics();
  return point;
}

SweepPoint RunOpenLoop(const Rne& model, const Graph& g, size_t threads,
                       size_t batch, double offered_qps,
                       size_t queue_capacity, double seconds) {
  auto engine_ptr = MakeEngine(model, g, threads, queue_capacity);
  serve::QueryEngine& engine = *engine_ptr;
  // Each of `threads` dispatchers fires a batch every interval; firing is
  // schedule-driven (sleep_until), never completion-driven.
  const double batches_per_second = offered_qps / static_cast<double>(batch);
  const auto interval = std::chrono::duration<double>(
      static_cast<double>(threads) / batches_per_second);
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at = start + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(seconds));
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const auto requests = RandomRequests(g, batch, 2000 + c);
      std::vector<serve::Response> responses;
      auto next = start + c * (interval / static_cast<double>(threads));
      while (next < stop_at) {
        std::this_thread::sleep_until(next);
        if (engine.QueryBatch(requests, &responses).ok()) {
          served.fetch_add(requests.size(), std::memory_order_relaxed);
        }
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(interval);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  SweepPoint point;
  point.mode = "open";
  point.threads = threads;
  point.batch = batch;
  point.offered_qps = offered_qps;
  point.achieved_qps = static_cast<double>(served.load()) / elapsed;
  point.metrics = engine.Metrics();
  return point;
}

/// Brownout leg: drive a closed loop, inject a 100% error rate into the
/// learned primary mid-run, then disarm and measure how long the engine
/// takes to climb back to 90% of its healthy throughput with the primary's
/// breaker closed again. During the fault the exact fallback keeps serving
/// (throughput dips, it does not zero) — that dip and the recovery time are
/// the resilience layer's headline numbers.
struct BrownoutReport {
  double healthy_qps = 0.0;
  double faulted_qps = 0.0;
  double recovered_qps = 0.0;
  double recovery_ms = -1.0;  // disarm -> recovered; -1 = never recovered
  uint64_t breaker_trips = 0;
  bool breaker_reclosed = false;
  uint64_t fell_back_breaker = 0;
  uint64_t retries = 0;
};

BrownoutReport RunBrownout(const Rne& model, const Graph& g, size_t threads,
                           size_t batch, size_t queue_capacity,
                           double seconds) {
  serve::EngineOptions options;
  options.num_threads = threads;
  options.queue_capacity = queue_capacity;
  // Fast probe cadence so recovery fits a short bench run; production keeps
  // the (longer) defaults.
  options.breaker.initial_backoff = std::chrono::milliseconds(20);
  options.breaker.max_backoff = std::chrono::milliseconds(200);
  auto engine = std::make_unique<serve::QueryEngine>(options);
  engine->AddReadyBackend(serve::MakeSharedModelBackend(model));
  serve::BackendContext ctx;
  ctx.graph = &g;
  engine->AddBackend("dijkstra", ctx);
  (void)engine->WaitUntilLoaded();  // Discard OK: graph-built, cannot fail.

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const auto requests = RandomRequests(g, batch, 3000 + c);
      std::vector<serve::Response> responses;
      while (!stop.load(std::memory_order_relaxed)) {
        // Discard OK: rejected batches are visible in engine metrics.
        (void)engine->QueryBatch(requests, &responses);
      }
    });
  }
  const auto measure_qps = [&](double secs) {
    const uint64_t before = engine->Metrics().served;
    Timer timer;
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    return static_cast<double>(engine->Metrics().served - before) /
           timer.ElapsedSeconds();
  };
  const auto rne_breaker_closed = [&] {
    for (const auto& h : engine->Health()) {
      if (h.name == "rne") return h.breaker == serve::BreakerState::kClosed;
    }
    return false;
  };

  BrownoutReport report;
  const double phase = seconds / 3.0;
  report.healthy_qps = measure_qps(phase);
  fault::RuntimeFaultConfig outage;
  outage.error_probability = 1.0;
  fault::ArmRuntimeFaultsAt("serve.backend.rne", outage);
  report.faulted_qps = measure_qps(phase);
  fault::DisarmRuntimeFaults();
  Timer recovery;
  while (recovery.ElapsedSeconds() < std::max(phase * 4.0, 2.0)) {
    const double window_qps = measure_qps(0.02);
    if (rne_breaker_closed() && window_qps >= 0.9 * report.healthy_qps) {
      report.recovery_ms = recovery.ElapsedSeconds() * 1000.0;
      break;
    }
  }
  report.recovered_qps = measure_qps(phase);
  stop.store(true);
  for (auto& t : clients) t.join();

  report.breaker_reclosed = rne_breaker_closed();
  for (const auto& h : engine->Health()) {
    if (h.name == "rne") report.breaker_trips = h.breaker_trips;
  }
  const serve::MetricsSnapshot metrics = engine->Metrics();
  report.fell_back_breaker = metrics.fell_back_breaker;
  report.retries = metrics.retries;
  return report;
}

/// QPS of the pre-engine serving path: one `rne_tool query` style
/// invocation per query, i.e. a full model load followed by one lookup.
double PerInvocationBaselineQps(const std::string& model_path, const Graph& g,
                                size_t queries) {
  Rng rng(7);
  double sink = 0.0;
  Timer timer;
  for (size_t i = 0; i < queries; ++i) {
    auto model = Rne::Load(model_path);
    if (!model.ok()) return 0.0;
    sink += model.value().Query(
        static_cast<VertexId>(rng.UniformIndex(g.NumVertices())),
        static_cast<VertexId>(rng.UniformIndex(g.NumVertices())));
  }
  const double elapsed = timer.ElapsedSeconds();
  if (sink < 0.0) return -1.0;  // keep the loads alive
  return static_cast<double>(queries) / elapsed;
}

/// QPS of a resident model queried one request at a time on one thread —
/// the fairest sequential comparator (no reload cost).
double ResidentSequentialQps(const Rne& model, const Graph& g,
                             size_t queries) {
  Rng rng(8);
  double sink = 0.0;
  Timer timer;
  for (size_t i = 0; i < queries; ++i) {
    sink += model.Query(
        static_cast<VertexId>(rng.UniformIndex(g.NumVertices())),
        static_cast<VertexId>(rng.UniformIndex(g.NumVertices())));
  }
  const double elapsed = timer.ElapsedSeconds();
  if (sink < 0.0) return -1.0;
  return static_cast<double>(queries) / elapsed;
}

void AppendPointJson(std::string* out, const SweepPoint& p) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"mode\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                "\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
                "\"served\": %llu, \"rejected\": %llu, "
                "\"fell_back_load\": %llu, \"fell_back_deadline\": %llu, "
                "\"p50_ns\": %.0f, \"p95_ns\": %.0f, \"p99_ns\": %.0f}",
                p.mode.c_str(), p.threads, p.batch, p.offered_qps,
                p.achieved_qps,
                static_cast<unsigned long long>(p.metrics.served),
                static_cast<unsigned long long>(p.metrics.rejected),
                static_cast<unsigned long long>(p.metrics.fell_back_load),
                static_cast<unsigned long long>(p.metrics.fell_back_deadline),
                p.metrics.p50_ns, p.metrics.p95_ns, p.metrics.p99_ns);
  *out += buf;
}

int Main(int argc, char** argv) {
  auto parsed = ArgParser::Parse(argc, argv, 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const ArgParser& args = parsed.value();
  FlagReader flags(args);
  const auto rows = static_cast<size_t>(flags.Int("rows", 64));
  const auto cols = static_cast<size_t>(flags.Int("cols", 64));
  const auto dim = static_cast<size_t>(flags.Int("dim", 32));
  const double seconds = flags.Real("seconds", 1.0);
  const auto queue = static_cast<size_t>(flags.Int("queue", 8192));
  const auto baseline_queries =
      static_cast<size_t>(flags.Int("baseline-queries", 20));
  const double brownout_seconds = flags.Real("brownout-seconds", 1.5);
  const auto threads = ParseSizeList(args.Get("threads", "1,2,4"));
  const auto batches = ParseSizeList(args.Get("batches", "1,16,64,256"));
  const std::string out_path =
      args.Get("out", ResultsDir() + "/serve_report.json");
  if (!flags.status().ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return 1;
  }

  RoadNetworkConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.seed = 11;
  const Graph g = MakeRoadNetwork(cfg);
  std::printf("grid %zux%zu: %zu vertices, %zu edges\n", rows, cols,
              g.NumVertices(), g.NumEdges());

  std::printf("training RNE d=%zu...\n", dim);
  std::fflush(stdout);
  RneConfig config = DefaultRneConfig(dim, g.NumVertices());
  const Rne model = Rne::Build(g, config);

  std::error_code ec;
  std::filesystem::create_directories(ResultsDir(), ec);
  const std::string model_path = ResultsDir() + "/cache/serve_bench.model";
  std::filesystem::create_directories(ResultsDir() + "/cache", ec);
  if (const Status st = model.Save(model_path); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }

  const double baseline_qps =
      PerInvocationBaselineQps(model_path, g, baseline_queries);
  const double resident_qps =
      ResidentSequentialQps(model, g, 200000);
  std::printf("baseline per-invocation: %.1f q/s; resident sequential: "
              "%.0f q/s\n",
              baseline_qps, resident_qps);

  std::vector<SweepPoint> points;
  for (const size_t t : threads) {
    for (const size_t b : batches) {
      SweepPoint p = RunClosedLoop(model, g, t, b, queue, seconds);
      std::printf("closed t=%zu b=%zu: %.0f q/s p50=%.0fns p99=%.0fns\n",
                  p.threads, p.batch, p.achieved_qps, p.metrics.p50_ns,
                  p.metrics.p99_ns);
      std::fflush(stdout);
      points.push_back(std::move(p));
    }
  }
  // Open loop at 50% and 150% of the best closed-loop capacity: below and
  // above saturation (the latter exercises admission-control rejection).
  double best_qps = 0.0;
  size_t best_threads = 1, best_batch = 1;
  for (const auto& p : points) {
    if (p.achieved_qps > best_qps) {
      best_qps = p.achieved_qps;
      best_threads = p.threads;
      best_batch = p.batch;
    }
  }
  for (const double fraction : {0.5, 1.5}) {
    SweepPoint p = RunOpenLoop(model, g, best_threads, best_batch,
                               fraction * best_qps, queue, seconds);
    std::printf("open offered=%.0f: achieved %.0f q/s rejected=%llu "
                "p99=%.0fns\n",
                p.offered_qps, p.achieved_qps,
                static_cast<unsigned long long>(p.metrics.rejected),
                p.metrics.p99_ns);
    std::fflush(stdout);
    points.push_back(std::move(p));
  }

  BrownoutReport brownout;
  bool ran_brownout = false;
  if (brownout_seconds > 0.0) {
    brownout = RunBrownout(model, g, best_threads, best_batch, queue,
                           brownout_seconds);
    ran_brownout = true;
    std::printf(
        "brownout: healthy %.0f q/s -> faulted %.0f q/s -> recovered %.0f "
        "q/s; recovery %.0f ms, breaker trips %llu, re-closed %s\n",
        brownout.healthy_qps, brownout.faulted_qps, brownout.recovered_qps,
        brownout.recovery_ms,
        static_cast<unsigned long long>(brownout.breaker_trips),
        brownout.breaker_reclosed ? "yes" : "no");
    std::fflush(stdout);
  }

  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"dataset\": {\"rows\": %zu, \"cols\": %zu, "
                "\"vertices\": %zu, \"edges\": %zu},\n"
                "  \"model\": {\"dim\": %zu, \"index_bytes\": %zu},\n"
                "  \"baseline\": {\"per_invocation_qps\": %.1f, "
                "\"resident_sequential_qps\": %.0f},\n"
                "  \"best\": {\"threads\": %zu, \"batch\": %zu, "
                "\"qps\": %.0f, \"speedup_vs_per_invocation\": %.1f},\n"
                "  \"sweep\": [\n",
                rows, cols, g.NumVertices(), g.NumEdges(), dim,
                model.IndexBytes(), baseline_qps, resident_qps, best_threads,
                best_batch, best_qps,
                baseline_qps > 0.0 ? best_qps / baseline_qps : 0.0);
  json += buf;
  for (size_t i = 0; i < points.size(); ++i) {
    AppendPointJson(&json, points[i]);
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  if (ran_brownout) {
    std::snprintf(
        buf, sizeof(buf),
        "  \"brownout\": {\"healthy_qps\": %.1f, \"faulted_qps\": %.1f, "
        "\"recovered_qps\": %.1f, \"recovery_ms\": %.1f, "
        "\"breaker_trips\": %llu, \"breaker_reclosed\": %s, "
        "\"fell_back_breaker\": %llu, \"retries\": %llu},\n",
        brownout.healthy_qps, brownout.faulted_qps, brownout.recovered_qps,
        brownout.recovery_ms,
        static_cast<unsigned long long>(brownout.breaker_trips),
        brownout.breaker_reclosed ? "true" : "false",
        static_cast<unsigned long long>(brownout.fell_back_breaker),
        static_cast<unsigned long long>(brownout.retries));
    json += buf;
  }
  // Process-global registry (per-backend latency histograms, persistence
  // and kNN counters accumulated across the whole sweep).
  json += "  \"metrics\": " + obs::MetricsRegistry::Global().ToJson() + "\n";
  json += "}\n";

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s (best %.0f q/s = %.1fx the per-invocation "
              "baseline)\n",
              out_path.c_str(), best_qps,
              baseline_qps > 0.0 ? best_qps / baseline_qps : 0.0);
  return 0;
}

}  // namespace
}  // namespace rne::bench

int main(int argc, char** argv) { return rne::bench::Main(argc, argv); }
