// Load generator for the serving subsystem: measures sustained QPS and
// latency percentiles of the batched QueryEngine on a generated grid, in
// two modes, and compares against the pre-engine baseline (a sequential
// `rne_tool query`-style loop that reloads the model for every query).
//
//  * closed loop — T client threads issue batches of B back-to-back; the
//    measured rate is the system's capacity at that concurrency;
//  * open loop  — clients fire batches on a fixed schedule at an offered
//    rate regardless of completions, so queue wait (and admission
//    rejection) shows up in the latency tail, not in the arrival process.
//
// Sweeps thread counts x batch sizes, writes bench_results/serve_report.json.
//
// A brownout leg injects a 100% error rate into the learned primary,
// reports the throughput dip while the exact fallback carries traffic, and
// measures the time from clearing the fault to regaining 90% of healthy
// throughput with the breaker re-closed.
//
// Socket legs (in-process net::TcpServer on an ephemeral loopback port)
// measure the epoll front end with the same Zipf-skewed generator:
//   * cache A/B — an open-loop pipelined stream against a Dijkstra-backed
//     server with and without the sharded LRU result cache; reports the
//     cached/uncached throughput ratio and the hit rate;
//   * socket brownout — the primary-outage drill over the socket path.
// --connect host:port turns the binary into a pure client driving an
// external rne_server (the CI socket smoke leg).
//
// An mmap leg re-loads the trained model in a child process per load mode
// (heap / mmap / mmap-cold; --mmap-probe <mode> is the child entry point)
// and reports load time, cold-map first-query latency, resident-set ceiling
// (VmHWM) and load-time RSS growth from /proc/self/status, plus a CRC over
// the answer bytes — the parent asserts the CRC is bit-identical across all
// modes, so zero-copy serving provably returns the heap path's answers.
//
//   bench_serve [--rows 64] [--cols 64] [--dim 32] [--seconds 1.0]
//               [--threads 1,2,4] [--batches 1,16,64,256]
//               [--queue 8192] [--baseline-queries 20] [--out <path>]
//               [--brownout-seconds 1.5]   (0 skips both brownout legs)
//               [--zipf 0] [--socket-seconds <seconds>] [--pipeline 64]
//   bench_serve --connect 127.0.0.1:7777 [--queries 1000] [--pipeline 64]
//               [--vertices 4096] [--zipf 1.0]
//   bench_serve --mmap-probe heap|mmap|cold --model city.rne
//               [--probe-queries 512]
//
// Smoke run (CI): bench_serve --seconds 0.2 --threads 2 --batches 64
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "algo/dijkstra.h"
#include "bench/bench_common.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "util/crc32c.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "util/arg_parser.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rne::bench {
namespace {

struct SweepPoint {
  std::string mode;  // "closed" | "open"
  size_t threads = 0;
  size_t batch = 0;
  double offered_qps = 0.0;  // open loop only
  double achieved_qps = 0.0;
  serve::MetricsSnapshot metrics;
};

std::vector<size_t> ParseSizeList(const std::string& csv) {
  std::vector<size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::strtol(item.c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<size_t>(v));
  }
  return out;
}

/// Maps a Zipf rank to a deterministic (s, t) pair via an integer mix, so a
/// skew-s stream over the rank universe revisits its hot pairs with Zipf
/// frequency while the pairs themselves spread across the whole graph.
std::pair<VertexId, VertexId> PairForRank(size_t rank, size_t num_vertices) {
  uint64_t z = static_cast<uint64_t>(rank) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return {static_cast<VertexId>((z >> 32) % num_vertices),
          static_cast<VertexId>((z & 0xffffffffULL) % num_vertices)};
}

/// Rank universe for skewed pair streams: enough distinct pairs that the
/// tail misses, small enough that the head re-hits.
size_t PairUniverse(size_t num_vertices) {
  return std::max<size_t>(1024, 4 * num_vertices);
}

/// `zipf_s` > 0 draws (s, t) pairs Zipf-skewed over PairUniverse ranks;
/// 0 keeps the historical uniform independent-endpoint stream.
std::vector<serve::Request> RandomRequests(const Graph& g, size_t n,
                                           uint64_t seed, double zipf_s = 0.0) {
  Rng rng(seed);
  std::vector<serve::Request> out(n);
  if (zipf_s > 0.0) {
    const ZipfSampler zipf(PairUniverse(g.NumVertices()), zipf_s);
    for (auto& r : out) {
      r.kind = serve::RequestKind::kDistance;
      const auto [s, t] = PairForRank(zipf.Sample(rng), g.NumVertices());
      r.s = s;
      r.t = t;
    }
    return out;
  }
  for (auto& r : out) {
    r.kind = serve::RequestKind::kDistance;
    r.s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    r.t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
  }
  return out;
}

/// Fresh engine per sweep point so its metrics cover exactly that point:
/// learned primary (already resident, Ready immediately) with an exact
/// Dijkstra fallback, mirroring the rne_server default chain.
std::unique_ptr<serve::QueryEngine> MakeEngine(const Rne& model,
                                               const Graph& g,
                                               size_t num_threads,
                                               size_t queue_capacity) {
  serve::EngineOptions options;
  options.num_threads = num_threads;
  options.queue_capacity = queue_capacity;
  auto engine = std::make_unique<serve::QueryEngine>(options);
  engine->AddReadyBackend(serve::MakeSharedModelBackend(model));
  serve::BackendContext ctx;
  ctx.graph = &g;
  engine->AddBackend("dijkstra", ctx);
  // Discard OK: dijkstra is graph-built and cannot fail to load; the
  // benchmark would only measure an empty chain otherwise.
  (void)engine->WaitUntilLoaded();
  return engine;
}

SweepPoint RunClosedLoop(const Rne& model, const Graph& g, size_t threads,
                         size_t batch, size_t queue_capacity, double seconds,
                         double zipf_s) {
  auto engine_ptr = MakeEngine(model, g, threads, queue_capacity);
  serve::QueryEngine& engine = *engine_ptr;
  std::atomic<uint64_t> served{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const auto requests = RandomRequests(g, batch, 1000 + c, zipf_s);
      std::vector<serve::Response> responses;
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.QueryBatch(requests, &responses).ok()) {
          served.fetch_add(requests.size(), std::memory_order_relaxed);
        }
      }
    });
  }
  Timer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& t : clients) t.join();
  const double elapsed = timer.ElapsedSeconds();

  SweepPoint point;
  point.mode = "closed";
  point.threads = threads;
  point.batch = batch;
  point.achieved_qps = static_cast<double>(served.load()) / elapsed;
  point.metrics = engine.Metrics();
  return point;
}

SweepPoint RunOpenLoop(const Rne& model, const Graph& g, size_t threads,
                       size_t batch, double offered_qps,
                       size_t queue_capacity, double seconds, double zipf_s) {
  auto engine_ptr = MakeEngine(model, g, threads, queue_capacity);
  serve::QueryEngine& engine = *engine_ptr;
  // Each of `threads` dispatchers fires a batch every interval; firing is
  // schedule-driven (sleep_until), never completion-driven.
  const double batches_per_second = offered_qps / static_cast<double>(batch);
  const auto interval = std::chrono::duration<double>(
      static_cast<double>(threads) / batches_per_second);
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at = start + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(seconds));
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const auto requests = RandomRequests(g, batch, 2000 + c, zipf_s);
      std::vector<serve::Response> responses;
      auto next = start + c * (interval / static_cast<double>(threads));
      while (next < stop_at) {
        std::this_thread::sleep_until(next);
        if (engine.QueryBatch(requests, &responses).ok()) {
          served.fetch_add(requests.size(), std::memory_order_relaxed);
        }
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(interval);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  SweepPoint point;
  point.mode = "open";
  point.threads = threads;
  point.batch = batch;
  point.offered_qps = offered_qps;
  point.achieved_qps = static_cast<double>(served.load()) / elapsed;
  point.metrics = engine.Metrics();
  return point;
}

/// Brownout leg: drive a closed loop, inject a 100% error rate into the
/// learned primary mid-run, then disarm and measure how long the engine
/// takes to climb back to 90% of its healthy throughput with the primary's
/// breaker closed again. During the fault the exact fallback keeps serving
/// (throughput dips, it does not zero) — that dip and the recovery time are
/// the resilience layer's headline numbers.
struct BrownoutReport {
  double healthy_qps = 0.0;
  double faulted_qps = 0.0;
  double recovered_qps = 0.0;
  double recovery_ms = -1.0;  // disarm -> recovered; -1 = never recovered
  uint64_t breaker_trips = 0;
  bool breaker_reclosed = false;
  uint64_t fell_back_breaker = 0;
  uint64_t retries = 0;
};

BrownoutReport RunBrownout(const Rne& model, const Graph& g, size_t threads,
                           size_t batch, size_t queue_capacity,
                           double seconds) {
  serve::EngineOptions options;
  options.num_threads = threads;
  options.queue_capacity = queue_capacity;
  // Fast probe cadence so recovery fits a short bench run; production keeps
  // the (longer) defaults.
  options.breaker.initial_backoff = std::chrono::milliseconds(20);
  options.breaker.max_backoff = std::chrono::milliseconds(200);
  auto engine = std::make_unique<serve::QueryEngine>(options);
  engine->AddReadyBackend(serve::MakeSharedModelBackend(model));
  serve::BackendContext ctx;
  ctx.graph = &g;
  engine->AddBackend("dijkstra", ctx);
  (void)engine->WaitUntilLoaded();  // Discard OK: graph-built, cannot fail.

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const auto requests = RandomRequests(g, batch, 3000 + c);
      std::vector<serve::Response> responses;
      while (!stop.load(std::memory_order_relaxed)) {
        // Discard OK: rejected batches are visible in engine metrics.
        (void)engine->QueryBatch(requests, &responses);
      }
    });
  }
  const auto measure_qps = [&](double secs) {
    const uint64_t before = engine->Metrics().served;
    Timer timer;
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    return static_cast<double>(engine->Metrics().served - before) /
           timer.ElapsedSeconds();
  };
  const auto rne_breaker_closed = [&] {
    for (const auto& h : engine->Health()) {
      if (h.name == "rne") return h.breaker == serve::BreakerState::kClosed;
    }
    return false;
  };

  BrownoutReport report;
  const double phase = seconds / 3.0;
  report.healthy_qps = measure_qps(phase);
  fault::RuntimeFaultConfig outage;
  outage.error_probability = 1.0;
  fault::ArmRuntimeFaultsAt("serve.backend.rne", outage);
  report.faulted_qps = measure_qps(phase);
  fault::DisarmRuntimeFaults();
  Timer recovery;
  while (recovery.ElapsedSeconds() < std::max(phase * 4.0, 2.0)) {
    const double window_qps = measure_qps(0.02);
    if (rne_breaker_closed() && window_qps >= 0.9 * report.healthy_qps) {
      report.recovery_ms = recovery.ElapsedSeconds() * 1000.0;
      break;
    }
  }
  report.recovered_qps = measure_qps(phase);
  stop.store(true);
  for (auto& t : clients) t.join();

  report.breaker_reclosed = rne_breaker_closed();
  for (const auto& h : engine->Health()) {
    if (h.name == "rne") report.breaker_trips = h.breaker_trips;
  }
  const serve::MetricsSnapshot metrics = engine->Metrics();
  report.fell_back_breaker = metrics.fell_back_breaker;
  report.retries = metrics.retries;
  return report;
}

/// A TcpServer + engine (+ optional result cache) serving on an ephemeral
/// loopback port with the reactor on its own thread.
struct SocketServer {
  std::unique_ptr<serve::QueryEngine> engine;
  std::unique_ptr<serve::ResultCache> cache;
  std::unique_ptr<net::TcpServer> server;
  std::thread reactor;

  uint16_t port() const { return server->port(); }
  void Stop() {
    server->Shutdown();
    if (reactor.joinable()) reactor.join();
  }
};

/// `model` == nullptr serves Dijkstra only (expensive misses — the cache
/// A/B needs the miss path to dominate); with a model the chain mirrors
/// rne_server's rne,dijkstra default. `cache_entries` == 0 disables the
/// result cache.
std::unique_ptr<SocketServer> StartSocketServer(
    const Graph& g, const Rne* model, size_t threads, size_t queue_capacity,
    size_t batch, size_t cache_entries,
    const serve::EngineOptions* engine_override = nullptr) {
  auto s = std::make_unique<SocketServer>();
  serve::EngineOptions options;
  if (engine_override != nullptr) options = *engine_override;
  options.num_threads = threads;
  options.queue_capacity = queue_capacity;
  s->engine = std::make_unique<serve::QueryEngine>(options);
  if (model != nullptr) {
    s->engine->AddReadyBackend(serve::MakeSharedModelBackend(*model));
  }
  serve::BackendContext ctx;
  ctx.graph = &g;
  s->engine->AddBackend("dijkstra", ctx);
  // Discard OK: dijkstra is graph-built and cannot fail to load.
  (void)s->engine->WaitUntilLoaded();
  if (cache_entries > 0) {
    serve::ResultCacheOptions cache_options;
    cache_options.capacity = cache_entries;
    s->cache = std::make_unique<serve::ResultCache>(cache_options);
  }
  net::TcpServerOptions server_options;
  server_options.port = 0;
  server_options.loop.batch = batch;
  server_options.loop.cache = s->cache.get();
  s->server = std::make_unique<net::TcpServer>(*s->engine, server_options);
  if (const Status started = s->server->Start(); !started.ok()) {
    std::fprintf(stderr, "socket leg skipped: %s\n",
                 started.ToString().c_str());
    return nullptr;
  }
  s->reactor = std::thread([srv = s->server.get()] {
    // Discard OK: a reactor error surfaces as zero achieved throughput.
    (void)srv->Serve();
  });
  return s;
}

struct SocketLegResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  uint64_t sent = 0;
  uint64_t received = 0;
};

/// Closed-loop capacity probe: at most `pipeline` queries in flight, so the
/// measurement ends promptly (no unbounded kernel-buffer backlog to drain).
double SocketClosedLoopQps(uint16_t port, const Graph& g, double zipf_s,
                           size_t pipeline, double seconds, uint64_t seed) {
  net::BlockingClient client;
  if (!client.Connect("127.0.0.1", port, std::chrono::milliseconds(10000))
           .ok()) {
    return 0.0;
  }
  Rng rng(seed);
  const ZipfSampler zipf(PairUniverse(g.NumVertices()), zipf_s);
  uint64_t done = 0;
  Timer timer;
  std::string block;
  while (timer.ElapsedSeconds() < seconds) {
    block.clear();
    for (size_t i = 0; i < pipeline; ++i) {
      VertexId s, t;
      if (zipf_s > 0.0) {
        std::tie(s, t) = PairForRank(zipf.Sample(rng), g.NumVertices());
      } else {
        s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
        t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
      }
      block += "QUERY " + std::to_string(s) + " " + std::to_string(t) + "\n";
    }
    if (!client.Send(block).ok()) break;
    for (size_t i = 0; i < pipeline; ++i) {
      if (!client.ReadLine().ok()) return 0.0;
      ++done;
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  return elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
}

/// Open-loop pipelined stream over one connection: a writer thread sends
/// `pipeline`-query bursts on a fixed schedule (never completion-driven),
/// a reader thread consumes answers as they arrive. Offered load beyond
/// the server's capacity queues, bounded by an in-flight window so the
/// post-deadline drain finishes in bounded time instead of emptying
/// megabytes of kernel socket buffer.
SocketLegResult RunSocketOpenLoop(uint16_t port, const Graph& g,
                                  double zipf_s, size_t pipeline,
                                  double offered_qps, double seconds,
                                  uint64_t seed) {
  constexpr uint64_t kMaxInflight = 8192;
  SocketLegResult result;
  result.offered_qps = offered_qps;
  net::BlockingClient client;
  const Status connected =
      client.Connect("127.0.0.1", port, std::chrono::milliseconds(10000));
  if (!connected.ok()) {
    std::fprintf(stderr, "socket leg connect failed: %s\n",
                 connected.ToString().c_str());
    return result;
  }
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> received{0};
  std::atomic<bool> writer_done{false};
  Timer timer;
  std::thread writer([&] {
    Rng rng(seed);
    const ZipfSampler zipf(PairUniverse(g.NumVertices()),
                           zipf_s > 0.0 ? zipf_s : 0.0);
    const auto start = std::chrono::steady_clock::now();
    const auto stop_at =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
    const auto interval =
        std::chrono::duration<double>(static_cast<double>(pipeline) /
                                      (offered_qps > 0.0 ? offered_qps : 1.0));
    auto next = start;
    std::string block;
    // Wall clock bounds the loop (not `next`): at saturating offered rates
    // the schedule lags real time and the leg must still end on time.
    while (std::chrono::steady_clock::now() < stop_at) {
      std::this_thread::sleep_until(next);
      if (sent.load(std::memory_order_relaxed) -
              received.load(std::memory_order_relaxed) >
          kMaxInflight) {
        // Saturated: hold the schedule, let the window drain a little.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(interval);
        continue;
      }
      block.clear();
      for (size_t i = 0; i < pipeline; ++i) {
        VertexId s, t;
        if (zipf_s > 0.0) {
          std::tie(s, t) = PairForRank(zipf.Sample(rng), g.NumVertices());
        } else {
          s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
          t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
        }
        block += "QUERY " + std::to_string(s) + " " + std::to_string(t) +
                 "\n";
      }
      if (!client.Send(block).ok()) break;
      sent.fetch_add(pipeline, std::memory_order_relaxed);
      next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          interval);
    }
    writer_done.store(true, std::memory_order_release);
    client.ShutdownWrite();
  });
  // Reader: every answer line closes one request.
  while (true) {
    auto line = client.ReadLine();
    if (!line.ok()) break;
    received.fetch_add(1, std::memory_order_relaxed);
    if (writer_done.load(std::memory_order_acquire) &&
        received.load(std::memory_order_relaxed) >=
            sent.load(std::memory_order_relaxed)) {
      break;
    }
  }
  writer.join();
  const double elapsed = timer.ElapsedSeconds();
  result.sent = sent.load();
  result.received = received.load();
  result.achieved_qps =
      elapsed > 0.0 ? static_cast<double>(result.received) / elapsed : 0.0;
  return result;
}

struct SocketCacheReport {
  double probe_qps = 0.0;  // uncached capacity probe
  double offered_qps = 0.0;
  double qps_cached = 0.0;
  double qps_uncached = 0.0;
  double speedup = 0.0;
  double hit_rate = 0.0;
  uint64_t evicted_slow = 0;
};

/// Cache A/B over the socket: Dijkstra-only backend (so a miss costs a
/// real shortest-path computation), Zipf(s) stream, offered load pinned at
/// a multiple of the uncached capacity. The cached variant absorbs the hot
/// head locally and reports the resulting throughput ratio.
SocketCacheReport RunSocketCacheAb(const Graph& g, size_t threads,
                                   size_t queue_capacity, size_t batch,
                                   double zipf_s, size_t pipeline,
                                   double seconds) {
  SocketCacheReport report;
  // Probe the uncached capacity with a short closed-loop burst.
  auto uncached = StartSocketServer(g, nullptr, threads, queue_capacity,
                                    batch, 0);
  if (uncached == nullptr) return report;
  report.probe_qps = SocketClosedLoopQps(uncached->port(), g, zipf_s,
                                         pipeline, std::min(seconds, 0.5),
                                         41);
  const double offered = std::max(report.probe_qps * 8.0, 1000.0);
  report.offered_qps = offered;
  const SocketLegResult plain = RunSocketOpenLoop(
      uncached->port(), g, zipf_s, pipeline, offered, seconds, 42);
  report.qps_uncached = plain.achieved_qps;
  uncached->Stop();

  auto cached = StartSocketServer(g, nullptr, threads, queue_capacity, batch,
                                  1 << 16);
  if (cached == nullptr) return report;
  const SocketLegResult warm = RunSocketOpenLoop(
      cached->port(), g, zipf_s, pipeline, offered, seconds, 42);
  report.qps_cached = warm.achieved_qps;
  const serve::CacheStats stats = cached->cache->Stats();
  report.hit_rate = stats.hit_rate;
  report.evicted_slow = cached->server->Stats().evicted_slow;
  cached->Stop();
  report.speedup = report.qps_uncached > 0.0
                       ? report.qps_cached / report.qps_uncached
                       : 0.0;
  return report;
}

struct SocketBrownoutReport {
  double healthy_qps = 0.0;
  double faulted_qps = 0.0;
  double recovered_qps = 0.0;
  bool served_through_fault = false;
};

/// The brownout drill over the socket path: flood one pipelined connection,
/// fault the learned primary for the middle third, and confirm the exact
/// fallback keeps answers flowing end to end (not just inside the engine).
SocketBrownoutReport RunSocketBrownout(const Graph& g, const Rne& model,
                                       size_t threads, size_t queue_capacity,
                                       size_t batch, double zipf_s,
                                       size_t pipeline, double seconds) {
  SocketBrownoutReport report;
  serve::EngineOptions engine_options;
  engine_options.breaker.initial_backoff = std::chrono::milliseconds(20);
  engine_options.breaker.max_backoff = std::chrono::milliseconds(200);
  auto server = StartSocketServer(g, &model, threads, queue_capacity, batch,
                                  0, &engine_options);
  if (server == nullptr) return report;
  net::BlockingClient client;
  if (!client.Connect("127.0.0.1", server->port(),
                      std::chrono::milliseconds(10000))
           .ok()) {
    server->Stop();
    return report;
  }
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> received{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(57);
    const ZipfSampler zipf(PairUniverse(g.NumVertices()),
                           zipf_s > 0.0 ? zipf_s : 1.0);
    std::string block;
    while (!stop.load(std::memory_order_acquire)) {
      if (sent.load(std::memory_order_relaxed) -
              received.load(std::memory_order_relaxed) >
          4 * pipeline) {
        // Keep the in-flight window small so the post-run drain (and the
        // windowed qps measurements) track the server, not socket buffers.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      block.clear();
      for (size_t i = 0; i < pipeline; ++i) {
        const auto [s, t] = PairForRank(zipf.Sample(rng), g.NumVertices());
        block += "QUERY " + std::to_string(s) + " " + std::to_string(t) +
                 "\n";
      }
      if (!client.Send(block).ok()) break;
      sent.fetch_add(pipeline, std::memory_order_relaxed);
    }
    client.ShutdownWrite();
  });
  std::thread reader([&] {
    while (client.ReadLine().ok()) {
      received.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const auto window_qps = [&](double secs) {
    const uint64_t before = received.load(std::memory_order_relaxed);
    Timer timer;
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    return static_cast<double>(received.load(std::memory_order_relaxed) -
                               before) /
           timer.ElapsedSeconds();
  };
  const double phase = seconds / 3.0;
  report.healthy_qps = window_qps(phase);
  fault::RuntimeFaultConfig outage;
  outage.error_probability = 1.0;
  fault::ArmRuntimeFaultsAt("serve.backend.rne", outage);
  report.faulted_qps = window_qps(phase);
  fault::DisarmRuntimeFaults();
  report.recovered_qps = window_qps(phase);
  report.served_through_fault = report.faulted_qps > 0.0;
  stop.store(true, std::memory_order_release);
  writer.join();
  reader.join();
  server->Stop();
  return report;
}

/// Pure client mode (--connect): drive an external rne_server with a
/// pipelined Zipf stream, then print its STATS line. Exit 0 only when
/// every query got a non-ERR answer.
int RunConnectClient(const std::string& target, size_t queries,
                     size_t pipeline, size_t vertices, double zipf_s) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "error: --connect expects host:port\n");
    return 1;
  }
  const std::string host = target.substr(0, colon);
  const long port = std::strtol(target.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: bad port in --connect\n");
    return 1;
  }
  net::BlockingClient client;
  const Status connected = client.Connect(
      host, static_cast<uint16_t>(port), std::chrono::milliseconds(30000));
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
    return 1;
  }
  Rng rng(91);
  const ZipfSampler zipf(PairUniverse(vertices), zipf_s > 0.0 ? zipf_s : 1.0);
  uint64_t answered = 0;
  uint64_t errors = 0;
  Timer timer;
  size_t remaining = queries;
  while (remaining > 0) {
    const size_t burst = std::min(pipeline, remaining);
    std::string block;
    for (size_t i = 0; i < burst; ++i) {
      const auto [s, t] = PairForRank(zipf.Sample(rng), vertices);
      block += "QUERY " + std::to_string(s) + " " + std::to_string(t) + "\n";
    }
    if (const Status sent = client.Send(block); !sent.ok()) {
      std::fprintf(stderr, "error: %s\n", sent.ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < burst; ++i) {
      auto line = client.ReadLine();
      if (!line.ok()) {
        std::fprintf(stderr, "error: %s\n", line.status().ToString().c_str());
        return 1;
      }
      ++answered;
      if (line.value().rfind("ERR", 0) == 0) ++errors;
    }
    remaining -= burst;
  }
  const double elapsed = timer.ElapsedSeconds();
  if (!client.Send("STATS\n").ok()) return 1;
  auto stats = client.ReadLine();
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", stats.value().c_str());
  std::printf("socket client: %llu/%zu answered, %llu errors, %.0f q/s\n",
              static_cast<unsigned long long>(answered), queries,
              static_cast<unsigned long long>(errors),
              elapsed > 0.0 ? static_cast<double>(answered) / elapsed : 0.0);
  return errors == 0 && answered == queries ? 0 : 1;
}

// ---------------------------------------------------------------------------
// mmap leg: per-mode child probes with bit-exact answer comparison.

/// VmRSS/VmHWM in kB from /proc/self/status (zeros when unavailable).
struct ProcessRss {
  uint64_t rss_kb = 0;
  uint64_t hwm_kb = 0;
};

ProcessRss ReadProcessRss() {
  ProcessRss out;
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return out;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) out.rss_kb = kb;
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) out.hwm_kb = kb;
  }
  std::fclose(f);
  return out;
}

/// Child entry point (--mmap-probe <mode>): load the model under one load
/// mode, answer a deterministic query stream, and print one parseable
/// MMAP_PROBE line. The answer CRC covers the raw double bytes, so the
/// parent's cross-mode equality check is bit-exact, never tolerance-based.
int RunMmapProbe(const std::string& mode, const std::string& model_path,
                 size_t queries) {
  LoadOptions load;
  if (mode == "mmap") {
    load.mode = LoadMode::kMmap;
  } else if (mode == "cold") {
    load.mode = LoadMode::kMmapCold;
  } else if (mode != "heap") {
    std::fprintf(stderr, "error: --mmap-probe expects heap|mmap|cold\n");
    return 1;
  }
  const ProcessRss before = ReadProcessRss();
  Timer load_timer;
  auto model = Rne::Load(model_path, load);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  const double load_ms = load_timer.ElapsedSeconds() * 1000.0;
  const ProcessRss after_load = ReadProcessRss();
  const size_t n = model.value().NumVertices();
  // First query: cold maps pay their deferred section verification here.
  const auto [s0, t0] = PairForRank(0, n);
  Timer first_timer;
  double answer = model.value().Query(s0, t0);
  const double first_query_us =
      static_cast<double>(first_timer.ElapsedNanos()) / 1000.0;
  uint32_t crc = Crc32c(&answer, sizeof(answer));
  for (size_t i = 1; i < queries; ++i) {
    const auto [s, t] = PairForRank(i, n);
    answer = model.value().Query(s, t);
    crc = Crc32cExtend(crc, &answer, sizeof(answer));
  }
  const ProcessRss end = ReadProcessRss();
  std::printf(
      "MMAP_PROBE mode=%s mapped=%d load_ms=%.3f first_query_us=%.1f "
      "load_rss_delta_kb=%lld vm_rss_kb=%llu vm_hwm_kb=%llu "
      "answer_crc=%08x\n",
      mode.c_str(), model.value().IsMapped() ? 1 : 0, load_ms,
      first_query_us,
      static_cast<long long>(after_load.rss_kb) -
          static_cast<long long>(before.rss_kb),
      static_cast<unsigned long long>(end.rss_kb),
      static_cast<unsigned long long>(end.hwm_kb), crc);
  return 0;
}

struct MmapProbeResult {
  bool ok = false;
  bool mapped = false;
  double load_ms = 0.0;
  double first_query_us = 0.0;
  long long load_rss_delta_kb = 0;
  uint64_t vm_rss_kb = 0;
  uint64_t vm_hwm_kb = 0;
  std::string answer_crc;
};

/// Runs `argv0 --mmap-probe <mode>` as a child process — each mode gets a
/// fresh RSS baseline — and parses its MMAP_PROBE line.
MmapProbeResult RunMmapProbeChild(const std::string& argv0,
                                  const std::string& mode,
                                  const std::string& model_path,
                                  size_t queries) {
  MmapProbeResult out;
  const std::string cmd = "\"" + argv0 + "\" --mmap-probe " + mode +
                          " --model \"" + model_path + "\" --probe-queries " +
                          std::to_string(queries);
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  char line[512];
  std::string probe_line;
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    if (std::strncmp(line, "MMAP_PROBE ", 11) == 0) probe_line = line;
  }
  const int status = pclose(pipe);
  if (status != 0 || probe_line.empty()) return out;
  char mode_buf[16] = {0};
  int mapped = 0;
  long long delta = 0;
  unsigned long long rss = 0, hwm = 0;
  char crc[16] = {0};
  if (std::sscanf(probe_line.c_str(),
                  "MMAP_PROBE mode=%15s mapped=%d load_ms=%lf "
                  "first_query_us=%lf load_rss_delta_kb=%lld vm_rss_kb=%llu "
                  "vm_hwm_kb=%llu answer_crc=%8s",
                  mode_buf, &mapped, &out.load_ms, &out.first_query_us,
                  &delta, &rss, &hwm, crc) != 8) {
    return out;
  }
  out.mapped = mapped != 0;
  out.load_rss_delta_kb = delta;
  out.vm_rss_kb = rss;
  out.vm_hwm_kb = hwm;
  out.answer_crc = crc;
  out.ok = true;
  return out;
}

void AppendProbeJson(std::string* out, const char* key,
                     const MmapProbeResult& p) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"mapped\": %s, \"load_ms\": %.3f, "
                "\"first_query_us\": %.1f, \"load_rss_delta_kb\": %lld, "
                "\"vm_rss_kb\": %llu, \"vm_hwm_kb\": %llu, "
                "\"answer_crc\": \"%s\"}",
                key, p.mapped ? "true" : "false", p.load_ms,
                p.first_query_us, p.load_rss_delta_kb,
                static_cast<unsigned long long>(p.vm_rss_kb),
                static_cast<unsigned long long>(p.vm_hwm_kb),
                p.answer_crc.c_str());
  *out += buf;
}

/// QPS of the pre-engine serving path: one `rne_tool query` style
/// invocation per query, i.e. a full model load followed by one lookup.
double PerInvocationBaselineQps(const std::string& model_path, const Graph& g,
                                size_t queries) {
  Rng rng(7);
  double sink = 0.0;
  Timer timer;
  for (size_t i = 0; i < queries; ++i) {
    auto model = Rne::Load(model_path);
    if (!model.ok()) return 0.0;
    sink += model.value().Query(
        static_cast<VertexId>(rng.UniformIndex(g.NumVertices())),
        static_cast<VertexId>(rng.UniformIndex(g.NumVertices())));
  }
  const double elapsed = timer.ElapsedSeconds();
  if (sink < 0.0) return -1.0;  // keep the loads alive
  return static_cast<double>(queries) / elapsed;
}

/// QPS of a resident model queried one request at a time on one thread —
/// the fairest sequential comparator (no reload cost).
double ResidentSequentialQps(const Rne& model, const Graph& g,
                             size_t queries) {
  Rng rng(8);
  double sink = 0.0;
  Timer timer;
  for (size_t i = 0; i < queries; ++i) {
    sink += model.Query(
        static_cast<VertexId>(rng.UniformIndex(g.NumVertices())),
        static_cast<VertexId>(rng.UniformIndex(g.NumVertices())));
  }
  const double elapsed = timer.ElapsedSeconds();
  if (sink < 0.0) return -1.0;
  return static_cast<double>(queries) / elapsed;
}

void AppendPointJson(std::string* out, const SweepPoint& p) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"mode\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                "\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
                "\"served\": %llu, \"rejected\": %llu, "
                "\"fell_back_load\": %llu, \"fell_back_deadline\": %llu, "
                "\"p50_ns\": %.0f, \"p95_ns\": %.0f, \"p99_ns\": %.0f}",
                p.mode.c_str(), p.threads, p.batch, p.offered_qps,
                p.achieved_qps,
                static_cast<unsigned long long>(p.metrics.served),
                static_cast<unsigned long long>(p.metrics.rejected),
                static_cast<unsigned long long>(p.metrics.fell_back_load),
                static_cast<unsigned long long>(p.metrics.fell_back_deadline),
                p.metrics.p50_ns, p.metrics.p95_ns, p.metrics.p99_ns);
  *out += buf;
}

int Main(int argc, char** argv) {
  auto parsed = ArgParser::Parse(argc, argv, 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const ArgParser& args = parsed.value();
  FlagReader flags(args);
  const auto rows = static_cast<size_t>(flags.Int("rows", 64));
  const auto cols = static_cast<size_t>(flags.Int("cols", 64));
  const auto dim = static_cast<size_t>(flags.Int("dim", 32));
  const double seconds = flags.Real("seconds", 1.0);
  const auto queue = static_cast<size_t>(flags.Int("queue", 8192));
  const auto baseline_queries =
      static_cast<size_t>(flags.Int("baseline-queries", 20));
  const double brownout_seconds = flags.Real("brownout-seconds", 1.5);
  const auto threads = ParseSizeList(args.Get("threads", "1,2,4"));
  const auto batches = ParseSizeList(args.Get("batches", "1,16,64,256"));
  const double zipf_s = flags.Real("zipf", 0.0);
  const double socket_seconds = flags.Real("socket-seconds", seconds);
  const auto pipeline = static_cast<size_t>(flags.Int("pipeline", 64));
  const std::string connect = args.Get("connect", "");
  const auto queries = static_cast<size_t>(flags.Int("queries", 1000));
  const auto vertices = static_cast<size_t>(flags.Int("vertices", 4096));
  const std::string mmap_probe = args.Get("mmap-probe", "");
  const auto probe_queries =
      static_cast<size_t>(flags.Int("probe-queries", 512));
  const std::string out_path =
      args.Get("out", ResultsDir() + "/serve_report.json");
  if (!flags.status().ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return 1;
  }

  if (!mmap_probe.empty()) {
    return RunMmapProbe(mmap_probe, args.Get("model", ""), probe_queries);
  }
  if (!connect.empty()) {
    return RunConnectClient(connect, queries, pipeline, vertices, zipf_s);
  }

  RoadNetworkConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.seed = 11;
  const Graph g = MakeRoadNetwork(cfg);
  std::printf("grid %zux%zu: %zu vertices, %zu edges\n", rows, cols,
              g.NumVertices(), g.NumEdges());

  std::printf("training RNE d=%zu...\n", dim);
  std::fflush(stdout);
  RneConfig config = DefaultRneConfig(dim, g.NumVertices());
  const Rne model = Rne::Build(g, config);

  std::error_code ec;
  std::filesystem::create_directories(ResultsDir(), ec);
  const std::string model_path = ResultsDir() + "/cache/serve_bench.model";
  std::filesystem::create_directories(ResultsDir() + "/cache", ec);
  if (const Status st = model.Save(model_path); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }

  const double baseline_qps =
      PerInvocationBaselineQps(model_path, g, baseline_queries);
  const double resident_qps =
      ResidentSequentialQps(model, g, 200000);
  std::printf("baseline per-invocation: %.1f q/s; resident sequential: "
              "%.0f q/s\n",
              baseline_qps, resident_qps);

  // mmap leg: the same model file re-loaded per mode in a child process.
  const MmapProbeResult probe_heap =
      RunMmapProbeChild(argv[0], "heap", model_path, probe_queries);
  const MmapProbeResult probe_mmap =
      RunMmapProbeChild(argv[0], "mmap", model_path, probe_queries);
  const MmapProbeResult probe_cold =
      RunMmapProbeChild(argv[0], "cold", model_path, probe_queries);
  const bool ran_mmap = probe_heap.ok && probe_mmap.ok && probe_cold.ok;
  if (ran_mmap) {
    std::printf(
        "mmap leg (%zu queries): heap load %.1fms rss+%lldkB | mmap load "
        "%.1fms rss+%lldkB | cold load %.1fms rss+%lldkB first-query "
        "%.0fus\n",
        probe_queries, probe_heap.load_ms, probe_heap.load_rss_delta_kb,
        probe_mmap.load_ms, probe_mmap.load_rss_delta_kb, probe_cold.load_ms,
        probe_cold.load_rss_delta_kb, probe_cold.first_query_us);
    if (probe_heap.answer_crc != probe_mmap.answer_crc ||
        probe_heap.answer_crc != probe_cold.answer_crc) {
      std::fprintf(stderr,
                   "error: mmap-served answers are not bit-identical to the "
                   "heap path (crc heap=%s mmap=%s cold=%s)\n",
                   probe_heap.answer_crc.c_str(),
                   probe_mmap.answer_crc.c_str(),
                   probe_cold.answer_crc.c_str());
      return 1;
    }
  } else {
    std::fprintf(stderr, "warning: mmap leg skipped (probe failed)\n");
  }

  std::vector<SweepPoint> points;
  for (const size_t t : threads) {
    for (const size_t b : batches) {
      SweepPoint p = RunClosedLoop(model, g, t, b, queue, seconds, zipf_s);
      std::printf("closed t=%zu b=%zu: %.0f q/s p50=%.0fns p99=%.0fns\n",
                  p.threads, p.batch, p.achieved_qps, p.metrics.p50_ns,
                  p.metrics.p99_ns);
      std::fflush(stdout);
      points.push_back(std::move(p));
    }
  }
  // Open loop at 50% and 150% of the best closed-loop capacity: below and
  // above saturation (the latter exercises admission-control rejection).
  double best_qps = 0.0;
  size_t best_threads = 1, best_batch = 1;
  for (const auto& p : points) {
    if (p.achieved_qps > best_qps) {
      best_qps = p.achieved_qps;
      best_threads = p.threads;
      best_batch = p.batch;
    }
  }
  for (const double fraction : {0.5, 1.5}) {
    SweepPoint p = RunOpenLoop(model, g, best_threads, best_batch,
                               fraction * best_qps, queue, seconds, zipf_s);
    std::printf("open offered=%.0f: achieved %.0f q/s rejected=%llu "
                "p99=%.0fns\n",
                p.offered_qps, p.achieved_qps,
                static_cast<unsigned long long>(p.metrics.rejected),
                p.metrics.p99_ns);
    std::fflush(stdout);
    points.push_back(std::move(p));
  }

  BrownoutReport brownout;
  bool ran_brownout = false;
  if (brownout_seconds > 0.0) {
    brownout = RunBrownout(model, g, best_threads, best_batch, queue,
                           brownout_seconds);
    ran_brownout = true;
    std::printf(
        "brownout: healthy %.0f q/s -> faulted %.0f q/s -> recovered %.0f "
        "q/s; recovery %.0f ms, breaker trips %llu, re-closed %s\n",
        brownout.healthy_qps, brownout.faulted_qps, brownout.recovered_qps,
        brownout.recovery_ms,
        static_cast<unsigned long long>(brownout.breaker_trips),
        brownout.breaker_reclosed ? "yes" : "no");
    std::fflush(stdout);
  }

  // Socket legs: the same engine behind the epoll front end, driven over
  // loopback. The cache A/B always uses Zipf(1.0) unless --zipf overrides
  // it — with a uniform stream a result cache is pointless by design.
  SocketCacheReport socket_cache;
  bool ran_socket_cache = false;
  if (socket_seconds > 0.0) {
    const double ab_zipf = zipf_s > 0.0 ? zipf_s : 1.0;
    socket_cache = RunSocketCacheAb(g, best_threads, queue, best_batch,
                                    ab_zipf, pipeline, socket_seconds);
    ran_socket_cache = true;
    std::printf(
        "socket cache A/B (zipf %.2f): uncached %.0f q/s -> cached %.0f "
        "q/s (%.1fx), hit rate %.2f\n",
        ab_zipf, socket_cache.qps_uncached, socket_cache.qps_cached,
        socket_cache.speedup, socket_cache.hit_rate);
    std::fflush(stdout);
  }
  SocketBrownoutReport socket_brownout;
  bool ran_socket_brownout = false;
  if (socket_seconds > 0.0 && brownout_seconds > 0.0) {
    socket_brownout = RunSocketBrownout(
        g, model, best_threads, queue, best_batch, zipf_s, pipeline,
        std::max(brownout_seconds, 0.6));
    ran_socket_brownout = true;
    std::printf(
        "socket brownout: healthy %.0f q/s -> faulted %.0f q/s -> "
        "recovered %.0f q/s (%s through the fault)\n",
        socket_brownout.healthy_qps, socket_brownout.faulted_qps,
        socket_brownout.recovered_qps,
        socket_brownout.served_through_fault ? "served" : "STALLED");
    std::fflush(stdout);
  }

  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"dataset\": {\"rows\": %zu, \"cols\": %zu, "
                "\"vertices\": %zu, \"edges\": %zu},\n"
                "  \"model\": {\"dim\": %zu, \"index_bytes\": %zu},\n"
                "  \"baseline\": {\"per_invocation_qps\": %.1f, "
                "\"resident_sequential_qps\": %.0f},\n"
                "  \"best\": {\"threads\": %zu, \"batch\": %zu, "
                "\"qps\": %.0f, \"speedup_vs_per_invocation\": %.1f},\n"
                "  \"sweep\": [\n",
                rows, cols, g.NumVertices(), g.NumEdges(), dim,
                model.IndexBytes(), baseline_qps, resident_qps, best_threads,
                best_batch, best_qps,
                baseline_qps > 0.0 ? best_qps / baseline_qps : 0.0);
  json += buf;
  for (size_t i = 0; i < points.size(); ++i) {
    AppendPointJson(&json, points[i]);
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  if (ran_brownout) {
    std::snprintf(
        buf, sizeof(buf),
        "  \"brownout\": {\"healthy_qps\": %.1f, \"faulted_qps\": %.1f, "
        "\"recovered_qps\": %.1f, \"recovery_ms\": %.1f, "
        "\"breaker_trips\": %llu, \"breaker_reclosed\": %s, "
        "\"fell_back_breaker\": %llu, \"retries\": %llu},\n",
        brownout.healthy_qps, brownout.faulted_qps, brownout.recovered_qps,
        brownout.recovery_ms,
        static_cast<unsigned long long>(brownout.breaker_trips),
        brownout.breaker_reclosed ? "true" : "false",
        static_cast<unsigned long long>(brownout.fell_back_breaker),
        static_cast<unsigned long long>(brownout.retries));
    json += buf;
  }
  if (ran_socket_cache) {
    std::snprintf(
        buf, sizeof(buf),
        "  \"socket_cache\": {\"probe_qps\": %.1f, \"offered_qps\": %.1f, "
        "\"qps_uncached\": %.1f, \"qps_cached\": %.1f, \"speedup\": %.2f, "
        "\"hit_rate\": %.4f, \"evicted_slow\": %llu},\n",
        socket_cache.probe_qps, socket_cache.offered_qps,
        socket_cache.qps_uncached, socket_cache.qps_cached,
        socket_cache.speedup, socket_cache.hit_rate,
        static_cast<unsigned long long>(socket_cache.evicted_slow));
    json += buf;
  }
  if (ran_socket_brownout) {
    std::snprintf(
        buf, sizeof(buf),
        "  \"brownout_socket\": {\"healthy_qps\": %.1f, "
        "\"faulted_qps\": %.1f, \"recovered_qps\": %.1f, "
        "\"served_through_fault\": %s},\n",
        socket_brownout.healthy_qps, socket_brownout.faulted_qps,
        socket_brownout.recovered_qps,
        socket_brownout.served_through_fault ? "true" : "false");
    json += buf;
  }
  if (ran_mmap) {
    std::snprintf(buf, sizeof(buf),
                  "  \"mmap\": {\"queries\": %zu, \"parity\": true,\n",
                  probe_queries);
    json += buf;
    AppendProbeJson(&json, "heap", probe_heap);
    json += ",\n";
    AppendProbeJson(&json, "mmap", probe_mmap);
    json += ",\n";
    AppendProbeJson(&json, "cold", probe_cold);
    json += "\n  },\n";
  }
  // Process-global registry (per-backend latency histograms, persistence
  // and kNN counters accumulated across the whole sweep).
  json += "  \"metrics\": " + obs::MetricsRegistry::Global().ToJson() + "\n";
  json += "}\n";

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s (best %.0f q/s = %.1fx the per-invocation "
              "baseline)\n",
              out_path.c_str(), best_qps,
              baseline_qps > 0.0 ? best_qps / baseline_qps : 0.0);
  return 0;
}

}  // namespace
}  // namespace rne::bench

int main(int argc, char** argv) { return rne::bench::Main(argc, argv); }
