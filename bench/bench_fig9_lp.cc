// Fig 9 reproduction: mean relative error after convergence for RNE trained
// with Lp metric, p in {0.5, 1, 2, 3, 4, 5}, same samples and d on BJ'.
// Expected shape: L1 clearly best, no monotone trend in p elsewhere.
#include <cstdio>

#include "bench/bench_common.h"

namespace rne::bench {
namespace {

void Run() {
  const Dataset ds = MakeBjDataset();
  const auto val = ValidationSet(ds.graph, 10000);
  TableWriter table({"p", "mean_rel_error_%"});

  for (const double p : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    RneConfig config = DefaultRneConfig(64, ds.graph.NumVertices());
    config.p = p;
    // Identical sampling budget for every p (the paper trains all six
    // models on the same 100M samples).
    config.train.seed = 1234;
    const Rne model = Rne::Build(ds.graph, config);
    RneMethod method(&model);
    const ErrorStats stats = EvalError(method, val);
    table.AddRow({TableWriter::Fmt(p, 1),
                  TableWriter::Fmt(100.0 * stats.mean_rel, 3)});
    std::printf("[fig9] p=%.1f err=%.3f%%\n", p, 100.0 * stats.mean_rel);
    std::fflush(stdout);
  }
  Emit(table, "Fig 9: error vs Lp metric (BJ')", "fig9_lp");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
