// Fig 12 reproduction: vertex-embedding training with landmark-based sample
// selection using |U| in {10, 100, 1000, 10000-capped} vs uniform Random,
// all starting from the same hierarchy embedding. Expected shape:
// LM-100 best, LM-10 worst (too few references), Random ~ LM-1000.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/trainer.h"

namespace rne::bench {
namespace {

void Run() {
  const Dataset ds = MakeBjDataset();
  const auto val = ValidationSet(ds.graph, 10000);
  TableWriter table({"strategy", "samples_processed", "mean_rel_error_%"});

  struct Variant {
    std::string name;
    bool landmark;
    size_t count;
  };
  const std::vector<Variant> variants = {
      {"LM-10", true, 10},     {"LM-100", true, 100},
      {"LM-1000", true, 1000}, {"LM-3000", true, 3000},
      {"Random", false, 0},
  };

  HierarchyOptions hopt;
  hopt.fanout = 4;
  hopt.leaf_threshold = 64;
  const PartitionHierarchy hier = PartitionHierarchy::Build(ds.graph, hopt);

  for (const Variant& v : variants) {
    TrainConfig cfg;
    cfg.dim = 64;
    cfg.level_samples = 30000;
    cfg.level_epochs = 5;
    cfg.vertex_samples = 150000;
    cfg.vertex_epochs = 10;
    cfg.landmark_sampling = v.landmark;
    cfg.num_landmarks = v.count;
    cfg.finetune_rounds = 0;
    cfg.seed = 77;  // same initialization for every variant
    Trainer trainer(ds.graph, hier, cfg);
    trainer.TrainHierarchyPhase();
    trainer.SetValidation(val);  // record only the vertex-embedding phase
    trainer.TrainVertexPhase();
    const auto& progress = trainer.progress();
    for (const auto& point : progress) {
      table.AddRow({v.name, std::to_string(point.samples_processed),
                    TableWriter::Fmt(100.0 * point.mean_rel_error, 3)});
    }
    std::printf("[fig12] %-8s final err=%.3f%%\n", v.name.c_str(),
                100.0 * progress.back().mean_rel_error);
    std::fflush(stdout);
  }
  Emit(table, "Fig 12: landmark-based sample selection (BJ')",
       "fig12_landmarks");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
