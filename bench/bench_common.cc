#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "util/rng.h"
#include "util/timer.h"

namespace rne::bench {

size_t BenchScale() {
  const char* env = std::getenv("RNE_BENCH_SCALE");
  if (env == nullptr) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v >= 1 ? static_cast<size_t>(v) : 1;
}

namespace {

Dataset MakeDataset(const std::string& name, size_t side, size_t dim,
                    size_t landmarks, uint64_t seed) {
  RoadNetworkConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.num_highways = std::max<size_t>(2, side / 16);
  cfg.seed = seed;
  return Dataset{name, MakeRoadNetwork(cfg), dim, landmarks};
}

}  // namespace

std::vector<Dataset> MakeDatasets(size_t max_datasets) {
  const size_t s = BenchScale();
  std::vector<Dataset> out;
  // Scaled stand-ins for BJ (338k), FLA (1.07M), US-W (6.26M): the ratio
  // between consecutive datasets (~3-5x) is preserved; absolute sizes fit a
  // single small machine.
  if (max_datasets >= 1) out.push_back(MakeDataset("BJ'", 56 * s, 64, 64, 11));
  if (max_datasets >= 2) out.push_back(MakeDataset("FLA'", 96 * s, 96, 96, 12));
  if (max_datasets >= 3) {
    out.push_back(MakeDataset("USW'", 144 * s, 96, 96, 13));
  }
  return out;
}

Dataset MakeBjDataset() { return std::move(MakeDatasets(1)[0]); }

RneConfig DefaultRneConfig(size_t dim, size_t num_vertices) {
  RneConfig config;
  config.dim = dim;
  config.hierarchy.fanout = 4;
  config.hierarchy.leaf_threshold = 64;
  // Phase 1 places sub-graph embeddings: a modest per-level budget suffices
  // because the number of sub-graphs per level is small.
  config.train.level_samples = std::max<size_t>(20000, 2 * num_vertices);
  config.train.level_epochs = 5;
  config.train.vertex_samples = 50 * num_vertices;
  config.train.vertex_epochs = 10;
  config.train.num_landmarks = 100;
  config.train.finetune_rounds = 5;
  config.train.finetune_samples = 15 * num_vertices;
  config.train.finetune_epochs = 3;
  config.train.grid_k = 16;
  // High source reuse keeps exact-sample generation (one search per source)
  // from dominating build time on the larger datasets.
  config.train.source_reuse = 16;
  return config;
}

const Rne& CachedRne(const Dataset& ds) {
  static std::vector<std::pair<std::string, std::unique_ptr<Rne>>> registry;
  const std::string key = ds.name + "_" + std::to_string(ds.rne_dim) + "_" +
                          std::to_string(ds.graph.NumVertices());
  for (const auto& [k, model] : registry) {
    if (k == key) return *model;
  }
  const std::string path = ResultsDir() + "/cache/rne_" + key + ".model";
  auto loaded = Rne::Load(path);
  if (loaded.ok() &&
      loaded.value().NumVertices() == ds.graph.NumVertices()) {
    std::printf("[cache] loaded %s\n", path.c_str());
    registry.emplace_back(key,
                          std::make_unique<Rne>(std::move(loaded).value()));
    return *registry.back().second;
  }
  std::printf("[cache] training RNE for %s (d=%zu)\n", ds.name.c_str(),
              ds.rne_dim);
  std::fflush(stdout);
  auto model = std::make_unique<Rne>(Rne::Build(
      ds.graph, DefaultRneConfig(ds.rne_dim, ds.graph.NumVertices())));
  std::error_code ec;
  std::filesystem::create_directories(ResultsDir() + "/cache", ec);
  const Status st = model->Save(path);
  if (!st.ok()) {
    std::printf("[cache] save failed: %s\n", st.ToString().c_str());
  }
  registry.emplace_back(key, std::move(model));
  return *registry.back().second;
}

std::vector<DistanceSample> ValidationSet(const Graph& g, size_t n,
                                          uint64_t seed) {
  DistanceSampler sampler(g);
  Rng rng(seed);
  // Validation pairs reuse sources too (8 targets per source) so the exact
  // ground truth stays cheap on the bigger datasets.
  auto pairs = RandomVertexPairs(g.NumVertices(), n, rng, 8);
  return sampler.ComputeDistances(pairs);
}

ErrorStats EvalError(DistanceMethod& method,
                     const std::vector<DistanceSample>& val) {
  const ErrorSummary summary = EvaluateErrors(
      [&method](VertexId s, VertexId t) { return method.Query(s, t); }, val);
  return {summary.mean_rel, summary.mean_abs};
}

double MeasureQueryNanos(DistanceMethod& method,
                         const std::vector<DistanceSample>& val,
                         size_t repeats) {
  if (val.empty()) return 0.0;
  double sink = 0.0;
  Timer timer;
  for (size_t r = 0; r < repeats; ++r) {
    for (const auto& s : val) sink += method.Query(s.s, s.t);
  }
  const double nanos = static_cast<double>(timer.ElapsedNanos());
  // Prevent the optimizer from discarding the query loop.
  if (sink == -1.0) std::printf("impossible\n");
  return nanos / static_cast<double>(val.size() * repeats);
}

std::vector<std::vector<DistanceSample>> DistanceScaleGroups(
    const Graph& g, size_t num_groups, size_t per_group, uint64_t seed) {
  // Estimate the network diameter from a large random sample, then bucket.
  const auto samples =
      ValidationSet(g, num_groups * per_group * 4, seed);
  double diameter = 0.0;
  for (const auto& s : samples) {
    if (s.dist != kInfDistance) diameter = std::max(diameter, s.dist);
  }
  std::vector<std::vector<DistanceSample>> groups(num_groups);
  for (const auto& s : samples) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    const size_t group = std::min(
        num_groups - 1,
        static_cast<size_t>(s.dist / diameter * static_cast<double>(num_groups)));
    if (groups[group].size() < per_group) groups[group].push_back(s);
  }
  return groups;
}

ZipfSampler::ZipfSampler(size_t n, double s) : s_(s) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformReal(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<size_t>(it - cdf_.begin());
}

std::string ResultsDir() { return "bench_results"; }

void Emit(const TableWriter& table, const std::string& title,
          const std::string& csv_name) {
  table.Print(title);
  const std::string path = ResultsDir() + "/" + csv_name + ".csv";
  const Status status = table.WriteCsv(path);
  if (!status.ok()) {
    std::printf("(csv write failed: %s)\n", status.ToString().c_str());
  } else {
    std::printf("(csv: %s)\n", path.c_str());
  }
}

}  // namespace rne::bench
