// Fig 16 reproduction: range-query F1 score and query time vs distance
// threshold tau on BJ', for RNE (tree index), Distance Oracle (filter by
// DO distance), the exact network-expansion comparator (V-tree stand-in,
// see DESIGN.md), and Euclidean / Manhattan over a KD-tree. A kNN variant
// of the same comparison is printed alongside (the paper notes the kNN
// results look like the range results).
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

#include "baselines/distance_oracle.h"
#include "baselines/gtree.h"
#include "baselines/kd_tree.h"
#include "baselines/network_knn.h"
#include "bench/bench_common.h"
#include "core/rne_index.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rne::bench {
namespace {

struct F1Time {
  double f1 = 0.0;
  double micros = 0.0;
};

double F1(const std::vector<VertexId>& approx,
          const std::vector<VertexId>& truth) {
  if (truth.empty() && approx.empty()) return 1.0;
  const std::set<VertexId> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (const VertexId v : approx) hits += truth_set.count(v);
  const double precision =
      approx.empty() ? 0.0 : static_cast<double>(hits) / approx.size();
  const double recall =
      truth.empty() ? 0.0 : static_cast<double>(hits) / truth.size();
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

void Run() {
  Dataset ds = MakeBjDataset();
  std::printf("[fig16] dataset %s: %zu vertices\n", ds.name.c_str(),
              ds.graph.NumVertices());
  std::fflush(stdout);

  // Targets: every 5th vertex plays POI (the paper queries object sets).
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < ds.graph.NumVertices(); v += 5) {
    targets.push_back(v);
  }

  const Rne& model = CachedRne(ds);
  const RneIndex rne_index(&model, targets);
  NetworkKnn exact(ds.graph, targets);  // ground truth (Dijkstra expansion)
  GTree gtree(ds.graph);                // the V-tree comparator (exact)
  gtree.SetTargets(targets);
  DistanceOracleOptions do_opt;
  do_opt.epsilon = 0.5;
  DistanceOracle oracle(ds.graph, do_opt);
  const KdTree kd_euclid(ds.graph, GeoMetric::kEuclidean, targets);
  const KdTree kd_manhattan(ds.graph, GeoMetric::kManhattan, targets);

  // Sweep tau from ~10% to ~50% of the network diameter (the paper's
  // 5-25 km on BJ covers a similar fraction).
  const auto probe = ValidationSet(ds.graph, 4000);
  double diameter = 0.0;
  for (const auto& s : probe) diameter = std::max(diameter, s.dist);

  Rng rng(71);
  std::vector<VertexId> sources;
  for (int i = 0; i < 60; ++i) {
    sources.push_back(
        static_cast<VertexId>(rng.UniformIndex(ds.graph.NumVertices())));
  }

  TableWriter table({"tau", "method", "range_F1", "range_time_us"});
  for (const double frac : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const double tau = diameter * frac;
    // Exact ground truth per source.
    std::vector<std::vector<VertexId>> truth;
    truth.reserve(sources.size());
    for (const VertexId s : sources) truth.push_back(exact.Range(s, tau));

    auto record = [&](const std::string& name, auto&& query) {
      double f1_sum = 0.0;
      Timer timer;
      std::vector<std::vector<VertexId>> results;
      results.reserve(sources.size());
      for (const VertexId s : sources) results.push_back(query(s));
      const double micros = static_cast<double>(timer.ElapsedNanos()) / 1e3 /
                            static_cast<double>(sources.size());
      for (size_t i = 0; i < sources.size(); ++i) {
        f1_sum += F1(results[i], truth[i]);
      }
      table.AddRow({TableWriter::Fmt(tau, 0), name,
                    TableWriter::Fmt(f1_sum / sources.size(), 3),
                    TableWriter::Fmt(micros, 1)});
      std::printf("[fig16] tau=%.0f %-12s F1=%.3f time=%.1fus\n", tau,
                  name.c_str(), f1_sum / sources.size(), micros);
      std::fflush(stdout);
    };

    record("RNE", [&](VertexId s) { return rne_index.Range(s, tau); });
    record("DistanceOracle", [&](VertexId s) {
      std::vector<VertexId> out;
      for (const VertexId t : targets) {
        if (oracle.Query(s, t) <= tau) out.push_back(t);
      }
      return out;
    });
    record("V-tree(GTree)", [&](VertexId s) { return gtree.Range(s, tau); });
    record("NetExpansion", [&](VertexId s) { return exact.Range(s, tau); });
    record("Euclidean", [&](VertexId s) { return kd_euclid.Range(s, tau); });
    record("Manhattan",
           [&](VertexId s) { return kd_manhattan.Range(s, tau); });
  }
  Emit(table, "Fig 16: range query F1 and time (BJ')", "fig16_range");

  // kNN variant (paper: "results are very similar to range queries").
  TableWriter knn_table({"k", "method", "knn_F1", "knn_time_us"});
  for (const size_t k : {1u, 5u, 10u, 25u, 50u}) {
    std::vector<std::set<VertexId>> truth;
    for (const VertexId s : sources) {
      std::set<VertexId> set;
      for (const auto& [v, d] : exact.Knn(s, k)) set.insert(v);
      truth.push_back(std::move(set));
    }
    auto record = [&](const std::string& name, auto&& query) {
      double f1_sum = 0.0;
      Timer timer;
      std::vector<std::vector<VertexId>> results;
      for (const VertexId s : sources) results.push_back(query(s));
      const double micros = static_cast<double>(timer.ElapsedNanos()) / 1e3 /
                            static_cast<double>(sources.size());
      for (size_t i = 0; i < sources.size(); ++i) {
        size_t hits = 0;
        for (const VertexId v : results[i]) hits += truth[i].count(v);
        f1_sum += truth[i].empty()
                      ? 1.0
                      : static_cast<double>(hits) /
                            std::max(results[i].size(), truth[i].size());
      }
      knn_table.AddRow({std::to_string(k), name,
                        TableWriter::Fmt(f1_sum / sources.size(), 3),
                        TableWriter::Fmt(micros, 1)});
      std::printf("[fig16] k=%zu %-12s F1=%.3f time=%.1fus\n", k, name.c_str(),
                  f1_sum / sources.size(), micros);
      std::fflush(stdout);
    };
    record("RNE", [&](VertexId s) {
      std::vector<VertexId> out;
      for (const auto& [v, d] : rne_index.Knn(s, k)) out.push_back(v);
      return out;
    });
    record("V-tree(GTree)", [&](VertexId s) {
      std::vector<VertexId> out;
      for (const auto& [v, d] : gtree.Knn(s, k)) out.push_back(v);
      return out;
    });
    record("NetExpansion", [&](VertexId s) {
      std::vector<VertexId> out;
      for (const auto& [v, d] : exact.Knn(s, k)) out.push_back(v);
      return out;
    });
    record("Euclidean", [&](VertexId s) {
      std::vector<VertexId> out;
      for (const auto& [v, d] : kd_euclid.Knn(s, k)) out.push_back(v);
      return out;
    });
  }
  Emit(knn_table, "Fig 16 (companion): kNN F1 and time (BJ')", "fig16_knn");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
