// Table III reproduction: mean relative error (%) and query time (us) for
// Euclidean, Manhattan, H2H, CH, Distance Oracle, ACH, LT and RNE on the
// three synthetic datasets. Distance Oracle runs only on BJ' (in the paper
// it does not scale past BJ).
#include <cstdio>
#include <memory>

#include "baselines/alt.h"
#include "baselines/ch.h"
#include "baselines/distance_oracle.h"
#include "baselines/geo.h"
#include "baselines/h2h.h"
#include "bench/bench_common.h"
#include "util/rng.h"

namespace rne::bench {
namespace {

void Run() {
  TableWriter errors({"method", "BJ'", "FLA'", "USW'"});
  TableWriter times({"method", "BJ'", "FLA'", "USW'"});

  const std::vector<std::string> methods = {"Euclidean", "Manhattan", "H2H",
                                            "CH",        "DistanceOracle",
                                            "ACH",       "LT",
                                            "RNE"};
  std::vector<std::vector<std::string>> err_cells(
      methods.size(), std::vector<std::string>{"-", "-", "-"});
  std::vector<std::vector<std::string>> time_cells = err_cells;

  auto datasets = MakeDatasets();
  for (size_t d = 0; d < datasets.size(); ++d) {
    const Dataset& ds = datasets[d];
    std::printf("[table3] dataset %s: %zu vertices, %zu edges\n",
                ds.name.c_str(), ds.graph.NumVertices(), ds.graph.NumEdges());
    std::fflush(stdout);
    const auto val = ValidationSet(ds.graph, 20000);

    auto record = [&](size_t row, DistanceMethod& method) {
      const ErrorStats stats = EvalError(method, val);
      const double nanos = MeasureQueryNanos(method, val);
      if (method.IsExact()) {
        err_cells[row][d] = "0 (exact)";
      } else {
        err_cells[row][d] = TableWriter::Fmt(100.0 * stats.mean_rel, 2) + "%";
      }
      time_cells[row][d] = TableWriter::Fmt(nanos / 1000.0, 3);
      std::printf("[table3]   %-15s err=%-8s time=%s us\n",
                  method.Name().c_str(), err_cells[row][d].c_str(),
                  time_cells[row][d].c_str());
      std::fflush(stdout);
    };

    GeoEstimator euclid(ds.graph, GeoMetric::kEuclidean);
    record(0, euclid);
    GeoEstimator manhattan(ds.graph, GeoMetric::kManhattan);
    record(1, manhattan);
    {
      H2HIndex h2h(ds.graph);
      record(2, h2h);
    }
    {
      ContractionHierarchy ch(ds.graph);
      record(3, ch);
    }
    if (ds.name == "BJ'") {  // paper: DO only works on BJ (eps = 0.5)
      DistanceOracleOptions opt;
      opt.epsilon = 0.5;
      DistanceOracle oracle(ds.graph, opt);
      record(4, oracle);
    }
    {
      ChOptions opt;
      opt.epsilon = 0.1;
      ContractionHierarchy ach(ds.graph, opt);
      record(5, ach);
    }
    {
      Rng rng(41);
      AltIndex lt(ds.graph, ds.lt_landmarks, rng);
      record(6, lt);
    }
    {
      const Rne& model = CachedRne(ds);
      RneMethod rne(&model);
      record(7, rne);
    }
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    errors.AddRow(
        {methods[m], err_cells[m][0], err_cells[m][1], err_cells[m][2]});
    times.AddRow(
        {methods[m], time_cells[m][0], time_cells[m][1], time_cells[m][2]});
  }
  Emit(errors, "Table III (a): mean relative error", "table3_error");
  Emit(times, "Table III (b): query time (us)", "table3_query_time");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
