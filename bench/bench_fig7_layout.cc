// Fig 7 reproduction: train a d=2 embedding of BJ' with and without the
// hierarchy and emit the 2-D vertex positions as CSV (plot them to see the
// layouts of Fig 7b/7c). Also prints spread statistics: the flat model's
// vectors collapse into clumps (low spread relative to the coordinate
// layout), the hierarchical one preserves the global layout.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/trainer.h"
#include "util/stats.h"

namespace rne::bench {
namespace {

/// Correlation between embedding L1 distances and true coordinates' L1
/// distances over random pairs — a scalar proxy for "preserves the layout".
double LayoutCorrelation(const Graph& g, const EmbeddingMatrix& emb,
                         Rng& rng) {
  std::vector<double> a, b;
  for (int i = 0; i < 4000; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g.NumVertices()));
    a.push_back(std::abs(static_cast<double>(emb.Row(s)[0]) - emb.Row(t)[0]) +
                std::abs(static_cast<double>(emb.Row(s)[1]) - emb.Row(t)[1]));
    b.push_back(ManhattanDistance(g, s, t));
  }
  const double ma = Mean(a), mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / (std::sqrt(va) * std::sqrt(vb) + 1e-12);
}

void Run() {
  const Dataset ds = MakeBjDataset();
  TableWriter table({"model", "vertex", "x", "y"});
  TableWriter stats({"model", "layout_correlation", "mean_rel_error_%"});
  const auto val = ValidationSet(ds.graph, 5000);

  for (const bool hierarchical : {false, true}) {
    HierarchyOptions hopt;
    hopt.fanout = 4;
    hopt.leaf_threshold =
        hierarchical ? 64 : ds.graph.NumVertices();
    if (!hierarchical) hopt.max_levels = 1;
    const PartitionHierarchy hier = PartitionHierarchy::Build(ds.graph, hopt);
    TrainConfig cfg;
    cfg.dim = 2;
    cfg.level_samples = 30000;
    cfg.level_epochs = 5;
    cfg.vertex_samples = 120000;
    cfg.vertex_epochs = 8;
    cfg.finetune_rounds = 0;
    Trainer trainer(ds.graph, hier, cfg);
    if (hierarchical) trainer.TrainHierarchyPhase();
    trainer.TrainVertexPhase();

    const EmbeddingMatrix emb = trainer.model().FlattenVertices();
    const std::string name = hierarchical ? "RNE-Hier" : "RNE-Naive";
    for (VertexId v = 0; v < emb.rows(); ++v) {
      table.AddRow({name, std::to_string(v),
                    TableWriter::Fmt(emb.Row(v)[0], 4),
                    TableWriter::Fmt(emb.Row(v)[1], 4)});
    }
    Rng rng(61);
    const double corr = LayoutCorrelation(ds.graph, emb, rng);
    const double err = 100.0 * trainer.MeanRelativeError(val);
    stats.AddRow({name, TableWriter::Fmt(corr, 4), TableWriter::Fmt(err, 2)});
    std::printf("[fig7] %-10s layout corr=%.4f err=%.2f%%\n", name.c_str(),
                corr, err);
    std::fflush(stdout);
  }
  // The big CSV goes to disk; the console shows only the summary statistics.
  const Status st = table.WriteCsv(ResultsDir() + "/fig7_layout.csv");
  if (!st.ok()) std::printf("csv write failed: %s\n", st.ToString().c_str());
  Emit(stats, "Fig 7: 2-D embedding layout quality (BJ')", "fig7_stats");
}

}  // namespace
}  // namespace rne::bench

int main() {
  rne::bench::Run();
  return 0;
}
