// Shared infrastructure for the paper-reproduction benchmark binaries:
// dataset construction (synthetic stand-ins for BJ / FLA / US-W),
// per-method evaluation loops, query-time measurement, and result output.
//
// Dataset scale is chosen so every bench finishes on a small single-core
// machine; set RNE_BENCH_SCALE=2 (or higher) to multiply the linear grid
// side of all datasets.
#ifndef RNE_BENCH_BENCH_COMMON_H_
#define RNE_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/distance_sampler.h"
#include "baselines/method.h"
#include "core/evaluation.h"
#include "core/rne.h"
#include "graph/generators.h"
#include "util/table_writer.h"

namespace rne::bench {

/// One synthetic evaluation dataset.
struct Dataset {
  std::string name;   // "BJ'", "FLA'", "USW'"
  Graph graph;
  size_t rne_dim;      // paper: 64 for BJ, 128 for the larger two
  size_t lt_landmarks; // paper: 128 / 256 / 256
};

/// The three datasets, smallest first. `max_datasets` limits how many are
/// materialized (some benches only run on BJ', like the paper's DO).
std::vector<Dataset> MakeDatasets(size_t max_datasets = 3);

/// Just the smallest dataset (ablation studies run on BJ only in the paper).
Dataset MakeBjDataset();

/// Scale factor from RNE_BENCH_SCALE (>= 1; default 1).
size_t BenchScale();

/// RNE build configuration tuned for the synthetic datasets; sample budgets
/// scale with the vertex count.
RneConfig DefaultRneConfig(size_t dim, size_t num_vertices);

/// Builds the default RNE model for a dataset, memoized on disk under
/// bench_results/cache/ so independent bench binaries share one training
/// run. (Table IV times fresh builds and bypasses this.) The returned
/// reference lives for the process lifetime.
const Rne& CachedRne(const Dataset& ds);

/// Exact random validation pairs (the paper evaluates on randomly chosen
/// pairs; size is scaled down from their 1M to fit the machine).
std::vector<DistanceSample> ValidationSet(const Graph& g, size_t n,
                                          uint64_t seed = 97);

/// Mean relative and mean absolute error of a method over `val`.
struct ErrorStats {
  double mean_rel = 0.0;
  double mean_abs = 0.0;
};
ErrorStats EvalError(DistanceMethod& method,
                     const std::vector<DistanceSample>& val);

/// Average wall-clock nanoseconds per Query() over the pairs of `val`.
double MeasureQueryNanos(DistanceMethod& method,
                         const std::vector<DistanceSample>& val,
                         size_t repeats = 1);

/// Splits exact random pairs into `num_groups` groups by distance scale:
/// group i holds pairs with distance in (diameter*i/Q, diameter*(i+1)/Q].
/// Mirrors the paper's Fig 13/17 query groups (x axis = upper bound).
std::vector<std::vector<DistanceSample>> DistanceScaleGroups(
    const Graph& g, size_t num_groups, size_t per_group, uint64_t seed = 131);

/// Adapters so Rne and raw callables fit the DistanceMethod interface.
class RneMethod : public DistanceMethod {
 public:
  explicit RneMethod(const Rne* model) : model_(model) {}
  std::string Name() const override { return "RNE"; }
  double Query(VertexId s, VertexId t) override { return model_->Query(s, t); }
  size_t IndexBytes() const override { return model_->IndexBytes(); }
  bool IsExact() const override { return false; }

 private:
  const Rne* model_;
};

/// Zipf-distributed rank sampler: P(rank = r) proportional to 1/(r+1)^s
/// over ranks [0, n). s = 0 degenerates to uniform; s around 1 matches the
/// skew of real road-network query logs (a few hot origin/destination
/// pairs dominate). Sampling is a binary search over the precomputed CDF,
/// so draws are O(log n) and deterministic given the Rng.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }
  double skew() const { return s_; }

 private:
  double s_;
  /// cdf_[r] = P(rank <= r); last entry is exactly 1.
  std::vector<double> cdf_;
};

/// Output directory for CSV mirrors of the printed tables.
std::string ResultsDir();
/// Prints the table and writes bench_results/<csv_name>.csv.
void Emit(const TableWriter& table, const std::string& title,
          const std::string& csv_name);

}  // namespace rne::bench

#endif  // RNE_BENCH_BENCH_COMMON_H_
