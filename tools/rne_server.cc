// Resident query server: loads a fallback chain of distance backends once,
// then serves batched requests — from stdin until EOF (default), or over
// TCP with --listen — the serving counterpart of one-shot `rne_tool query`,
// which pays a full index load per invocation.
//
//   rne_server --model city.rne --gr net.gr [--co net.co]
//              [--backends rne,dijkstra] [--threads 4] [--queue 4096]
//              [--deadline-us 0] [--batch 64] [--shed]
//              [--listen <port>] [--max-conns 1024] [--idle-timeout-ms 0]
//              [--cache 65536] [--cache-shards 16]
//              [--mmap | --mmap-cold]
//
// --mmap serves model files zero-copy from a read-only mapping (v2
// envelopes; v1 files fall back to a heap load). --mmap-cold additionally
// defers section checksums to first access — ModelManager re-verifies at
// load/RELOAD time, so published models are always checked.
//
// The line protocol (QUERY/KNN/STATS/METRICS/RELOAD) lives in
// serve/server_loop.h; this binary only parses flags, builds the engine,
// and wires the loop to stdin/stdout or to the epoll front end in
// net/tcp_server.h (--listen; port 0 picks an ephemeral port, printed on
// stderr as "listening on 127.0.0.1:<port>").
//
// --cache puts a sharded LRU result cache (serve/result_cache.h) in front
// of the engine for both front ends; 0 disables it. A successful RELOAD
// invalidates the cache via the ModelManager publish listener, so a swap
// never serves a stale distance.
//
// With --model the "rne" backend is served through a ModelManager, so the
// RELOAD verb hot-swaps the model without restarting. SIGINT/SIGTERM drain
// gracefully: stop reading (the handlers install without SA_RESTART so
// blocked reads/epoll_waits return with EINTR), flush in-flight batches,
// write buffered answers, print final stats.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/dimacs.h"
#include "net/tcp_server.h"
#include "serve/model_manager.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/server_loop.h"
#include "util/arg_parser.h"

namespace rne::serve {
namespace {

std::atomic<bool> g_shutdown{false};

void HandleShutdownSignal(int) {
  g_shutdown.store(true, std::memory_order_release);
}

/// SIGINT/SIGTERM set the drain flag. Deliberately NO SA_RESTART: the
/// signal must interrupt the blocking stdin read (EINTR) so the loop
/// observes the flag instead of waiting for the next input line.
void InstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int Main(int argc, char** argv) {
  auto parsed =
      ArgParser::Parse(argc, argv, 1, {"shed", "mmap", "mmap-cold"});
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const ArgParser& args = parsed.value();
  const Status known = args.RequireKnown(
      {"model", "gr", "co", "backends", "threads", "queue", "deadline-us",
       "batch", "seed", "shed", "listen", "max-conns", "idle-timeout-ms",
       "cache", "cache-shards", "mmap", "mmap-cold"});
  if (!known.ok()) return Fail(known.ToString());
  FlagReader flags(args);
  EngineOptions options;
  options.num_threads = static_cast<size_t>(flags.Int("threads", 0));
  options.queue_capacity = static_cast<size_t>(flags.Int("queue", 4096));
  options.default_deadline =
      std::chrono::microseconds(flags.Int("deadline-us", 0));
  options.shedder.enabled = args.Has("shed");
  ServerLoopOptions loop_options;
  loop_options.batch = static_cast<size_t>(flags.Int("batch", 64));
  const auto seed = static_cast<uint64_t>(flags.Int("seed", 1));
  const bool listen = args.Has("listen");
  const long listen_port = flags.Int("listen", 0);
  const long max_conns = flags.Int("max-conns", 1024);
  const long idle_timeout_ms = flags.Int("idle-timeout-ms", 0);
  const long cache_entries = flags.Int("cache", 65536);
  const long cache_shards = flags.Int("cache-shards", 16);
  if (!flags.status().ok()) return Fail(flags.status().ToString());
  if (listen_port < 0 || listen_port > 65535) {
    return Fail("--listen expects a port in [0, 65535]");
  }
  if (cache_entries < 0) return Fail("--cache expects a non-negative count");

  Graph graph;
  BackendContext ctx;
  ctx.model_path = args.Get("model", "");
  ctx.seed = seed;
  if (args.Has("mmap-cold")) {
    ctx.load.mode = LoadMode::kMmapCold;
  } else if (args.Has("mmap")) {
    ctx.load.mode = LoadMode::kMmap;
  }
  if (args.Has("gr")) {
    auto loaded = LoadDimacs(args.Get("gr", ""), args.Get("co", ""));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    graph = std::move(loaded).value();
    ctx.graph = &graph;
  }

  // Declared before the engine: backends created from the manager hold a
  // pointer into it, so it must be destroyed after the engine.
  ModelManager::Options manager_options;
  manager_options.num_workers = options.num_threads == 0
                                    ? std::thread::hardware_concurrency()
                                    : options.num_threads;
  manager_options.load = ctx.load;
  ModelManager manager(manager_options);

  QueryEngine engine(options);
  const auto names = SplitCommas(args.Get("backends", "rne,dijkstra"));
  if (names.empty()) return Fail("--backends must name at least one backend");
  bool managed_rne = false;
  for (const auto& name : names) {
    if (name == "rne" && !ctx.model_path.empty()) {
      // Serve the learned backend through the manager so RELOAD can swap
      // the model in place. A failed initial load is a warning, not fatal:
      // the rest of the chain serves and RELOAD can fix it later.
      const Status first = manager.Load(ctx.model_path);
      if (!first.ok()) {
        std::fprintf(stderr,
                     "warning: model load failed (%s); 'rne' joins the "
                     "chain unpublished until a successful RELOAD\n",
                     first.ToString().c_str());
      }
      engine.AddReadyBackend(manager.MakeManagedBackend());
      managed_rne = true;
    } else {
      engine.AddBackend(name, ctx);
    }
  }
  const Status loaded = engine.WaitUntilLoaded();
  if (!loaded.ok()) {
    std::fprintf(stderr,
                 "warning: backend load failed (%s); serving via the rest "
                 "of the chain\n",
                 loaded.ToString().c_str());
  }
  if (managed_rne) loop_options.model_manager = &manager;
  loop_options.stop = &g_shutdown;

  // Result cache, shared by both front ends. The publish listener ties hot
  // swap to invalidation: a RELOAD (or any other Load) can never leave a
  // pre-swap distance reachable.
  std::unique_ptr<ResultCache> cache;
  if (cache_entries > 0) {
    ResultCacheOptions cache_options;
    cache_options.capacity = static_cast<size_t>(cache_entries);
    cache_options.num_shards = static_cast<size_t>(
        cache_shards <= 0 ? 1 : cache_shards);
    cache = std::make_unique<ResultCache>(cache_options);
    loop_options.cache = cache.get();
    manager.AddPublishListener(
        [cache = cache.get()](uint64_t) { cache->Invalidate(); });
  }

  InstallShutdownHandlers();
  std::fprintf(stderr,
               "rne_server ready: %zu backend(s), %zu worker(s)%s, cache=%ld\n",
               engine.num_backends(), engine.pool().num_threads(),
               managed_rne ? ", hot reload enabled" : "", cache_entries);

  if (listen) {
    net::TcpServerOptions server_options;
    server_options.port = static_cast<uint16_t>(listen_port);
    server_options.max_connections = static_cast<size_t>(max_conns);
    server_options.idle_timeout = std::chrono::milliseconds(idle_timeout_ms);
    server_options.loop = loop_options;
    net::TcpServer server(engine, server_options);
    const Status started = server.Start();
    if (!started.ok()) return Fail(started.ToString());
    std::fprintf(stderr, "listening on 127.0.0.1:%u\n", server.port());
    const Status served = server.Serve();
    if (!served.ok()) return Fail(served.ToString());
    const auto stats = server.Stats();
    std::fprintf(stderr,
                 "rne_server draining: %s, buffered answers written\n",
                 g_shutdown.load(std::memory_order_acquire)
                     ? "signal received"
                     : "shutdown requested");
    std::fprintf(stderr,
                 "rne_server done: %llu line(s) over %llu connection(s), "
                 "metrics %s\n",
                 static_cast<unsigned long long>(stats.lines),
                 static_cast<unsigned long long>(stats.accepted),
                 engine.Metrics().ToJson().c_str());
    return 0;
  }

  const size_t lines = RunServerLoop(std::cin, std::cout, engine, loop_options);
  if (g_shutdown.load(std::memory_order_acquire)) {
    std::fprintf(stderr,
                 "rne_server draining: signal received, in-flight batch "
                 "flushed\n");
  }
  std::fprintf(stderr, "rne_server done: %zu line(s) processed, metrics %s\n",
               lines, engine.Metrics().ToJson().c_str());
  return 0;
}

}  // namespace
}  // namespace rne::serve

int main(int argc, char** argv) { return rne::serve::Main(argc, argv); }
