// Resident query server: loads a fallback chain of distance backends once,
// then serves batched requests from stdin until EOF — the serving
// counterpart of one-shot `rne_tool query`, which pays a full index load
// per invocation.
//
//   rne_server --model city.rne --gr net.gr [--co net.co]
//              [--backends rne,dijkstra] [--threads 4] [--queue 4096]
//              [--deadline-us 0] [--batch 64]
//
// Protocol (newline-delimited, answers in request order):
//   QUERY <s> <t>   ->  DIST <value> backend=<name> exact=<0|1> fallback=<0|1>
//   KNN <s> <k>     ->  KNN <v>:<dist> ... (one line, ascending distance)
//   STATS           ->  STATS <metrics json>      (flushes pending batch)
//   anything else   ->  ERR <message>
// Per-request failures print `ERR <status>`; a batch rejected by admission
// control prints one ERR line per request in it (explicit backpressure).
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dimacs.h"
#include "serve/query_engine.h"
#include "util/arg_parser.h"

namespace rne::serve {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void PrintResponse(const Request& request, const Response& response) {
  if (!response.status.ok()) {
    std::printf("ERR %s\n", response.status.ToString().c_str());
    return;
  }
  if (request.kind == RequestKind::kDistance) {
    std::printf("DIST %.2f backend=%s exact=%d fallback=%d\n",
                response.distance, response.backend.c_str(),
                response.exact ? 1 : 0, response.fell_back ? 1 : 0);
    return;
  }
  std::printf("KNN");
  for (const auto& [v, d] : response.knn) std::printf(" %u:%.2f", v, d);
  std::printf("\n");
}

/// Runs `pending` through the engine and prints every answer in order.
void Flush(QueryEngine& engine, std::vector<Request>* pending) {
  if (pending->empty()) return;
  std::vector<Response> responses;
  const Status admitted = engine.QueryBatch(*pending, &responses);
  if (!admitted.ok()) {
    for (size_t i = 0; i < pending->size(); ++i) {
      std::printf("ERR %s\n", admitted.ToString().c_str());
    }
  } else {
    for (size_t i = 0; i < pending->size(); ++i) {
      PrintResponse((*pending)[i], responses[i]);
    }
  }
  pending->clear();
  std::fflush(stdout);
}

int Main(int argc, char** argv) {
  auto parsed = ArgParser::Parse(argc, argv, 1);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const ArgParser& args = parsed.value();
  FlagReader flags(args);
  EngineOptions options;
  options.num_threads = static_cast<size_t>(flags.Int("threads", 0));
  options.queue_capacity = static_cast<size_t>(flags.Int("queue", 4096));
  options.default_deadline =
      std::chrono::microseconds(flags.Int("deadline-us", 0));
  const auto batch = static_cast<size_t>(flags.Int("batch", 64));
  const auto seed = static_cast<uint64_t>(flags.Int("seed", 1));
  if (!flags.status().ok()) return Fail(flags.status().ToString());

  Graph graph;
  BackendContext ctx;
  ctx.model_path = args.Get("model", "");
  ctx.seed = seed;
  if (args.Has("gr")) {
    auto loaded = LoadDimacs(args.Get("gr", ""), args.Get("co", ""));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    graph = std::move(loaded).value();
    ctx.graph = &graph;
  }

  QueryEngine engine(options);
  const auto names = SplitCommas(args.Get("backends", "rne,dijkstra"));
  if (names.empty()) return Fail("--backends must name at least one backend");
  for (const auto& name : names) engine.AddBackend(name, ctx);
  const Status loaded = engine.WaitUntilLoaded();
  if (!loaded.ok()) {
    std::fprintf(stderr,
                 "warning: backend load failed (%s); serving via the rest "
                 "of the chain\n",
                 loaded.ToString().c_str());
  }
  std::fprintf(stderr, "rne_server ready: %zu backend(s), %zu worker(s)\n",
               engine.num_backends(), engine.pool().num_threads());

  std::vector<Request> pending;
  pending.reserve(batch);
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) continue;
    if (verb == "STATS") {
      Flush(engine, &pending);
      std::printf("STATS %s\n", engine.Metrics().ToJson().c_str());
      std::fflush(stdout);
      continue;
    }
    Request request;
    if (verb == "QUERY") {
      long s = -1, t = -1;
      in >> s >> t;
      if (in.fail() || s < 0 || t < 0) {
        Flush(engine, &pending);  // keep answers in request order
        std::printf("ERR INVALID_ARGUMENT: usage: QUERY <s> <t>\n");
        continue;
      }
      request.kind = RequestKind::kDistance;
      request.s = static_cast<VertexId>(s);
      request.t = static_cast<VertexId>(t);
    } else if (verb == "KNN") {
      long s = -1, k = -1;
      in >> s >> k;
      if (in.fail() || s < 0 || k < 0) {
        Flush(engine, &pending);
        std::printf("ERR INVALID_ARGUMENT: usage: KNN <s> <k>\n");
        continue;
      }
      request.kind = RequestKind::kKnn;
      request.s = static_cast<VertexId>(s);
      request.k = static_cast<size_t>(k);
    } else {
      Flush(engine, &pending);
      std::printf("ERR INVALID_ARGUMENT: unknown verb '%s'\n", verb.c_str());
      continue;
    }
    pending.push_back(request);
    if (pending.size() >= batch) Flush(engine, &pending);
  }
  Flush(engine, &pending);
  std::fprintf(stderr, "rne_server done: %s\n",
               engine.Metrics().ToJson().c_str());
  return 0;
}

}  // namespace
}  // namespace rne::serve

int main(int argc, char** argv) { return rne::serve::Main(argc, argv); }
