// Resident query server: loads a fallback chain of distance backends once,
// then serves batched requests from stdin until EOF — the serving
// counterpart of one-shot `rne_tool query`, which pays a full index load
// per invocation.
//
//   rne_server --model city.rne --gr net.gr [--co net.co]
//              [--backends rne,dijkstra] [--threads 4] [--queue 4096]
//              [--deadline-us 0] [--batch 64]
//
// The line protocol (QUERY/KNN/STATS/METRICS) lives in
// serve/server_loop.h; this binary only parses flags, builds the engine,
// and wires the loop to stdin/stdout.
#include <cstdio>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dimacs.h"
#include "serve/query_engine.h"
#include "serve/server_loop.h"
#include "util/arg_parser.h"

namespace rne::serve {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int Main(int argc, char** argv) {
  auto parsed = ArgParser::Parse(argc, argv, 1);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const ArgParser& args = parsed.value();
  const Status known = args.RequireKnown(
      {"model", "gr", "co", "backends", "threads", "queue", "deadline-us",
       "batch", "seed"});
  if (!known.ok()) return Fail(known.ToString());
  FlagReader flags(args);
  EngineOptions options;
  options.num_threads = static_cast<size_t>(flags.Int("threads", 0));
  options.queue_capacity = static_cast<size_t>(flags.Int("queue", 4096));
  options.default_deadline =
      std::chrono::microseconds(flags.Int("deadline-us", 0));
  ServerLoopOptions loop_options;
  loop_options.batch = static_cast<size_t>(flags.Int("batch", 64));
  const auto seed = static_cast<uint64_t>(flags.Int("seed", 1));
  if (!flags.status().ok()) return Fail(flags.status().ToString());

  Graph graph;
  BackendContext ctx;
  ctx.model_path = args.Get("model", "");
  ctx.seed = seed;
  if (args.Has("gr")) {
    auto loaded = LoadDimacs(args.Get("gr", ""), args.Get("co", ""));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    graph = std::move(loaded).value();
    ctx.graph = &graph;
  }

  QueryEngine engine(options);
  const auto names = SplitCommas(args.Get("backends", "rne,dijkstra"));
  if (names.empty()) return Fail("--backends must name at least one backend");
  for (const auto& name : names) engine.AddBackend(name, ctx);
  const Status loaded = engine.WaitUntilLoaded();
  if (!loaded.ok()) {
    std::fprintf(stderr,
                 "warning: backend load failed (%s); serving via the rest "
                 "of the chain\n",
                 loaded.ToString().c_str());
  }
  std::fprintf(stderr, "rne_server ready: %zu backend(s), %zu worker(s)\n",
               engine.num_backends(), engine.pool().num_threads());

  const size_t lines = RunServerLoop(std::cin, std::cout, engine, loop_options);
  std::fprintf(stderr, "rne_server done: %zu line(s) processed, metrics %s\n",
               lines, engine.Metrics().ToJson().c_str());
  return 0;
}

}  // namespace
}  // namespace rne::serve

int main(int argc, char** argv) { return rne::serve::Main(argc, argv); }
