// Command-line front end for the RNE library: generate synthetic networks,
// train models on DIMACS graphs, evaluate accuracy/latency, and run queries.
//
//   rne_tool generate --rows 64 --cols 64 --seed 1 --gr net.gr --co net.co
//   rne_tool build    --gr net.gr --co net.co --dim 64 --model city.rne
//   rne_tool train    (alias for build) ... --threads 8 parallelizes the
//                     partition build (deterministic) and SGD training
//   rne_tool eval     --gr net.gr --co net.co --model city.rne --pairs 5000
//   rne_tool query    --model city.rne --s 17 --t 9000
//   rne_tool knn      --model city.rne --s 17 --k 5
//   rne_tool verify   city.rne [--deep]
//
// eval/query/knn accept --mmap (serve the model zero-copy from a read-only
// mapping) or --mmap-cold (defer section checksums to first access); v1
// files fall back to a heap load. verify lists the v2 section table.
//
// Serving commands (query/knn) degrade gracefully: when the model file is
// missing or corrupt and --gr is given, they log the load failure and answer
// exactly via Dijkstra instead of aborting. For sustained traffic use
// rne_server, which keeps the index resident across queries.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "algo/dijkstra.h"
#include "algo/distance_sampler.h"
#include "core/kernels.h"
#include "core/rne.h"
#include "core/rne_index.h"
#include "graph/dimacs.h"
#include "graph/generators.h"
#include "obs/trace.h"
#include "serve/model_manager.h"
#include "util/arg_parser.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace rne::tool {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

StatusOr<Graph> LoadGraphArg(const ArgParser& args) {
  const std::string gr = args.Get("gr", "");
  if (gr.empty()) return Status::InvalidArgument("--gr <file> is required");
  return LoadDimacs(gr, args.Get("co", ""));
}

LoadOptions LoadOptionsFromArgs(const ArgParser& args) {
  LoadOptions load;
  if (args.Has("mmap-cold")) {
    load.mode = LoadMode::kMmapCold;
  } else if (args.Has("mmap")) {
    load.mode = LoadMode::kMmap;
  }
  return load;
}

/// Loads the model under the --mmap/--mmap-cold flags. A cold map defers
/// section checksums to first access, which on this one-shot CLI would
/// surface as a CorruptionError thrown mid-query; complete the verification
/// here so a corrupt file takes the same warn-and-fall-back path as an
/// eager load failure (ModelManager does the same before publishing).
StatusOr<Rne> LoadModelArg(const ArgParser& args) {
  auto model =
      Rne::Load(args.Get("model", "model.rne"), LoadOptionsFromArgs(args));
  if (!model.ok()) return model;
  if (const Status st = model.value().VerifyMapped(); !st.ok()) return st;
  return model;
}

int CmdGenerate(const ArgParser& args) {
  FlagReader flags(args);
  RoadNetworkConfig cfg;
  cfg.rows = static_cast<size_t>(flags.Int("rows", 64));
  cfg.cols = static_cast<size_t>(flags.Int("cols", 64));
  cfg.seed = static_cast<uint64_t>(flags.Int("seed", 1));
  if (!flags.status().ok()) return Fail(flags.status().ToString());
  const Graph g = MakeRoadNetwork(cfg);
  const std::string gr = args.Get("gr", "network.gr");
  const Status st = SaveDimacs(g, gr, args.Get("co", ""));
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s: %zu vertices, %zu edges\n", gr.c_str(),
              g.NumVertices(), g.NumEdges());
  return 0;
}

/// Writes `content` to `path` (plain write; metrics/trace sidecars do not
/// need the crash-safe envelope).
Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content << "\n";
  if (!out) return Status::IoError("cannot write " + path);
  return Status::Ok();
}

int CmdBuild(const ArgParser& args) {
  FlagReader flags(args);
  RneConfig config;
  config.dim = static_cast<size_t>(flags.Int("dim", 64));
  config.train.seed = static_cast<uint64_t>(flags.Int("seed", 13));
  // --threads drives both build phases: the partition build is deterministic
  // at any worker count (0 = hardware); SGD training stays sequential unless
  // threads > 1 is requested explicitly.
  const size_t threads = static_cast<size_t>(flags.Int("threads", 1));
  config.train.num_threads = threads;
  config.hierarchy.partition.num_threads = threads;
  if (!flags.status().ok()) return Fail(flags.status().ToString());
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  config.train.verbose = true;
  Timer timer;
  RneBuildStats stats;
  const Rne model = Rne::Build(graph.value(), config, &stats);
  const std::string out = args.Get("model", "model.rne");
  const Status st = model.Save(out);
  if (!st.ok()) return Fail(st.ToString());
  static const char* const kPhaseNames[3] = {"hierarchy", "vertex",
                                             "fine-tune"};
  std::printf("  partition: %.1fs (%u build thread%s)\n",
              stats.partition_seconds, model.build_threads(),
              model.build_threads() == 1 ? "" : "s");
  for (int phase = 0; phase < 3; ++phase) {
    if (stats.phase_samples[phase] == 0) continue;
    const double secs = stats.phase_seconds[phase];
    std::printf("  phase %d (%s): %.1fs, %zu samples (%.0f samples/s)\n",
                phase + 1, kPhaseNames[phase], secs,
                stats.phase_samples[phase],
                secs > 0.0 ? static_cast<double>(stats.phase_samples[phase]) /
                                 secs
                           : 0.0);
  }
  std::printf(
      "trained d=%zu model in %.1fs (%zu samples, %zu SGD thread%s, kernel "
      "backend %s) and wrote %s (%.1f MB)\n",
      model.dim(), timer.ElapsedSeconds(), stats.samples_processed,
      stats.train_threads, stats.train_threads == 1 ? "" : "s",
      KernelBackendName(), out.c_str(),
      static_cast<double>(model.IndexBytes()) / 1048576.0);
  // --metrics-out: registry counters/gauges/histograms plus the per-phase
  // span ring in one JSON object. --trace-out: the same spans in
  // chrome://tracing "traceEvents" form (open via chrome://tracing or
  // https://ui.perfetto.dev).
  if (args.Has("metrics-out")) {
    const std::string json = "{\"metrics\":" +
                             obs::MetricsRegistry::Global().ToJson() +
                             ",\"trace\":" + obs::TraceJson() + "}";
    const Status ws = WriteTextFile(args.Get("metrics-out", ""), json);
    if (!ws.ok()) return Fail(ws.ToString());
    std::printf("wrote metrics to %s\n", args.Get("metrics-out", "").c_str());
  }
  if (args.Has("trace-out")) {
    const Status ws =
        WriteTextFile(args.Get("trace-out", ""), obs::TraceChromeJson());
    if (!ws.ok()) return Fail(ws.ToString());
    std::printf("wrote chrome://tracing events to %s\n",
                args.Get("trace-out", "").c_str());
  }
  return 0;
}

int CmdEval(const ArgParser& args) {
  FlagReader flags(args);
  const auto n = static_cast<size_t>(flags.Int("pairs", 5000));
  const auto seed = static_cast<uint64_t>(flags.Int("seed", 97));
  if (!flags.status().ok()) return Fail(flags.status().ToString());
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) return Fail(graph.status().ToString());
  auto model = LoadModelArg(args);
  if (!model.ok()) return Fail(model.status().ToString());
  if (model.value().NumVertices() != graph.value().NumVertices()) {
    return Fail("model and graph vertex counts differ");
  }
  DistanceSampler sampler(graph.value());
  Rng rng(seed);
  const auto val = sampler.RandomPairs(n, rng);
  double err = 0.0;
  size_t count = 0;
  for (const auto& s : val) {
    if (s.dist <= 0.0 || s.dist == kInfDistance) continue;
    err += std::abs(model.value().Query(s.s, s.t) - s.dist) / s.dist;
    ++count;
  }
  Timer timer;
  double sink = 0.0;
  for (const auto& s : val) sink += model.value().Query(s.s, s.t);
  const double ns = static_cast<double>(timer.ElapsedNanos()) /
                    static_cast<double>(val.size());
  if (sink < 0) return 1;  // keep the loop alive
  std::printf("mean relative error: %.3f%% over %zu pairs\n",
              100.0 * err / static_cast<double>(count), count);
  std::printf("query latency: %.0f ns\n", ns);
  return 0;
}

/// Validates a --s/--t style vertex id against `n` vertices; ids are user
/// input, so a bad one is InvalidArgument — never UB on a model lookup.
Status CheckVertexId(const char* name, long raw, size_t n) {
  if (raw < 0 || static_cast<unsigned long>(raw) >= n) {
    return Status::InvalidArgument(
        "--" + std::string(name) + " " + std::to_string(raw) +
        " out of range [0, " + std::to_string(n) + ")");
  }
  return Status::Ok();
}

/// Loads the graph for exact-Dijkstra fallback after a model load failure.
/// Returns the graph, or an error explaining both failures.
StatusOr<Graph> FallbackGraph(const ArgParser& args,
                              const Status& load_status) {
  std::fprintf(stderr, "warning: model load failed (%s)\n",
               load_status.ToString().c_str());
  if (args.Get("gr", "").empty()) {
    return Status::FailedPrecondition(
        "model unusable and no --gr graph given for exact fallback");
  }
  std::fprintf(stderr, "warning: serving exact Dijkstra answers instead\n");
  return LoadGraphArg(args);
}

int CmdQuery(const ArgParser& args) {
  FlagReader flags(args);
  const long raw_s = flags.Int("s", 0);
  const long raw_t = flags.Int("t", 1);
  if (!flags.status().ok()) return Fail(flags.status().ToString());
  if (args.Has("exact")) {
    auto graph = LoadGraphArg(args);
    if (!graph.ok()) return Fail(graph.status().ToString());
    const size_t n = graph.value().NumVertices();
    Status st = CheckVertexId("s", raw_s, n);
    if (st.ok()) st = CheckVertexId("t", raw_t, n);
    if (!st.ok()) return Fail(st.ToString());
    DijkstraSearch dij(graph.value());
    std::printf("%.2f\n", dij.Distance(static_cast<VertexId>(raw_s),
                                       static_cast<VertexId>(raw_t)));
    return 0;
  }
  auto model = LoadModelArg(args);
  if (!model.ok()) {
    auto graph = FallbackGraph(args, model.status());
    if (!graph.ok()) return Fail(graph.status().ToString());
    const size_t n = graph.value().NumVertices();
    Status st = CheckVertexId("s", raw_s, n);
    if (st.ok()) st = CheckVertexId("t", raw_t, n);
    if (!st.ok()) return Fail(st.ToString());
    DijkstraSearch dij(graph.value());
    std::printf("%.2f\n", dij.Distance(static_cast<VertexId>(raw_s),
                                       static_cast<VertexId>(raw_t)));
    return 0;
  }
  const size_t n = model.value().NumVertices();
  Status st = CheckVertexId("s", raw_s, n);
  if (st.ok()) st = CheckVertexId("t", raw_t, n);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("%.2f\n", model.value().Query(static_cast<VertexId>(raw_s),
                                            static_cast<VertexId>(raw_t)));
  return 0;
}

int CmdKnn(const ArgParser& args) {
  FlagReader flags(args);
  const long raw_s = flags.Int("s", 0);
  const auto k = static_cast<size_t>(std::max(0L, flags.Int("k", 5)));
  if (!flags.status().ok()) return Fail(flags.status().ToString());
  auto model = LoadModelArg(args);
  if (!model.ok()) {
    auto graph = FallbackGraph(args, model.status());
    if (!graph.ok()) return Fail(graph.status().ToString());
    const size_t n = graph.value().NumVertices();
    const Status st = CheckVertexId("s", raw_s, n);
    if (!st.ok()) return Fail(st.ToString());
    DijkstraSearch dij(graph.value());
    const auto& dist = dij.AllDistances(static_cast<VertexId>(raw_s));
    std::vector<std::pair<double, VertexId>> order;
    order.reserve(n);
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] != kInfDistance) order.emplace_back(dist[v], v);
    }
    const size_t take = std::min(k, order.size());
    std::partial_sort(order.begin(), order.begin() + take, order.end());
    for (size_t i = 0; i < take; ++i) {
      std::printf("%u %.2f\n", order[i].second, order[i].first);
    }
    return 0;
  }
  const Status st = CheckVertexId("s", raw_s, model.value().NumVertices());
  if (!st.ok()) return Fail(st.ToString());
  const RneIndex index(&model.value());
  for (const auto& [v, d] : index.Knn(static_cast<VertexId>(raw_s), k)) {
    std::printf("%u %.2f\n", v, d);
  }
  return 0;
}

int CmdVerify(const ArgParser& args) {
  std::string path = args.Get("file", "");
  if (path.empty() && !args.positionals().empty()) {
    path = args.positionals().front();
  }
  if (path.empty()) {
    return Fail("usage: rne_tool verify <index-file> [--deep]");
  }
  // Same structural check ModelManager runs before a hot swap, so a file
  // that passes here is exactly a file RELOAD would accept structurally.
  auto info = serve::VerifyIndexFile(path);
  if (!info.ok()) return Fail(path + ": " + info.status().ToString());
  std::printf("%s: OK (%s, format v%u, %llu payload bytes)\n", path.c_str(),
              IndexKindName(info.value().index_magic),
              info.value().format_version,
              static_cast<unsigned long long>(info.value().payload_size));
  for (const SectionInfo& sec : info.value().sections) {
    std::printf("  section 0x%02x: offset %llu, %llu bytes%s\n", sec.tag,
                static_cast<unsigned long long>(sec.offset),
                static_cast<unsigned long long>(sec.size),
                (sec.flags & kSectionFlagLazyVerify) != 0 ? ", lazy-verify"
                                                          : "");
  }
  if (args.Has("deep")) {
    // Full typed deserialize — catches payload-level problems the envelope
    // checksums cannot see (e.g. inconsistent section lengths).
    if (info.value().index_magic != kRneMagic) {
      std::printf("%s: deep verify skipped (only %s payloads supported)\n",
                  path.c_str(), IndexKindName(kRneMagic));
      return 0;
    }
    auto model = Rne::Load(path);
    if (!model.ok()) return Fail(path + ": " + model.status().ToString());
    std::printf("%s: deep OK (%zu vertices, dim %zu)\n", path.c_str(),
                model.value().NumVertices(), model.value().dim());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: rne_tool <generate|build|train|eval|query|knn|verify> "
                 "[--key value ...]\n");
    return 1;
  }
  auto args = ArgParser::Parse(argc, argv, 2, /*switches=*/{"exact", "deep", "mmap", "mmap-cold"});
  if (!args.ok()) return Fail(args.status().ToString());
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(args.value());
  // `train` is an alias for `build` (the build IS the training run).
  if (cmd == "build" || cmd == "train") return CmdBuild(args.value());
  if (cmd == "eval") return CmdEval(args.value());
  if (cmd == "query") return CmdQuery(args.value());
  if (cmd == "knn") return CmdKnn(args.value());
  if (cmd == "verify") return CmdVerify(args.value());
  return Fail("unknown command: " + cmd);
}

}  // namespace
}  // namespace rne::tool

int main(int argc, char** argv) { return rne::tool::Main(argc, argv); }
